//! Injective functional dependencies and the `compatible` predicate
//! (paper Section V-A1).
//!
//! Sealing is only sound when the sealed partitions of an input stream are
//! respected by the component's own partitioning (its *gate*). The paper
//! formalizes this with injective functional dependencies:
//!
//! > `injectivefd(A, B)` holds for attribute sets `A` and `B` if `A ↦ B` via
//! > some injective (distinctness-preserving) function.
//!
//! and defines
//!
//! > `compatible(partition, seal) ≡ ∃ attr ⊆ partition | injectivefd(seal, attr)`
//!
//! Identity is the ubiquitous injective function: projecting an attribute
//! without transformation preserves sealing, and compositions of injective
//! functions remain injective. [`FdStore`] keeps a set of declared injective
//! FDs, closes them under composition (a bounded chase in the spirit of
//! Maier–Mendelzon–Sagiv), and answers `injectivefd` / `compatible` queries.

use crate::annotation::Gate;
use crate::keys::KeySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One declared injective functional dependency `lhs ↦ rhs`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InjectiveFd {
    /// Determinant attribute set.
    pub lhs: KeySet,
    /// Determined attribute set (injectively).
    pub rhs: KeySet,
}

/// A store of injective functional dependencies, closed under composition.
///
/// The identity dependency `A ↦ A` is implicit for every attribute set `A`
/// and never needs declaring.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdStore {
    fds: BTreeSet<InjectiveFd>,
}

impl FdStore {
    /// An empty store: only identity dependencies hold.
    #[must_use]
    pub fn new() -> Self {
        FdStore::default()
    }

    /// Declare `lhs ↦ rhs` via an injective function (e.g. company name ↦
    /// stock symbol in the paper's example). Returns `&mut self` for
    /// chaining.
    pub fn declare<I, J, S, T>(&mut self, lhs: I, rhs: J) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        self.fds.insert(InjectiveFd {
            lhs: KeySet::from_attrs(lhs),
            rhs: KeySet::from_attrs(rhs),
        });
        self.close();
        self
    }

    /// Number of stored (explicit) dependencies after closure.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether no explicit dependencies are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Iterate the stored dependencies.
    pub fn iter(&self) -> impl Iterator<Item = &InjectiveFd> {
        self.fds.iter()
    }

    /// Close the store under composition: if `A ↦ B` and `B ↦ C` then
    /// `A ↦ C` (injective ∘ injective = injective). Terminates because the
    /// candidate set is finite (pairs of declared endpoint sets).
    fn close(&mut self) {
        loop {
            let mut added = Vec::new();
            for a in &self.fds {
                for b in &self.fds {
                    if a.rhs == b.lhs {
                        let composed = InjectiveFd {
                            lhs: a.lhs.clone(),
                            rhs: b.rhs.clone(),
                        };
                        if !self.fds.contains(&composed) {
                            added.push(composed);
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            self.fds.extend(added);
        }
    }

    /// Does `lhs ↦ rhs` hold via an injective function?
    ///
    /// Sound but deliberately incomplete (like the paper's Section VII-B2):
    /// we recognize the identity (`rhs == lhs`), declared dependencies, and
    /// their compositions — not arbitrary implied dependencies.
    #[must_use]
    pub fn injectivefd(&self, lhs: &KeySet, rhs: &KeySet) -> bool {
        if rhs == lhs {
            return true; // identity function
        }
        self.fds.iter().any(|fd| &fd.lhs == lhs && &fd.rhs == rhs)
    }

    /// The paper's `compatible(partition, seal)` predicate: does some subset
    /// of the gate's attributes get injectively determined by the seal key?
    ///
    /// A [`Gate::Wildcard`] treats every record as its own partition (the
    /// finest partitioning), which every seal on the stream's own attributes
    /// refines, so it is compatible with any non-empty seal key.
    #[must_use]
    pub fn compatible(&self, gate: &Gate, seal: &KeySet) -> bool {
        if seal.is_empty() {
            return false;
        }
        match gate {
            Gate::Wildcard => true,
            Gate::Keys(partition) => {
                if partition.is_empty() {
                    return false;
                }
                // Identity on a subset: the seal key itself appears within
                // the partition attributes.
                if seal.is_subset(partition) {
                    return true;
                }
                // A single gate attribute injectively determined by the seal.
                if partition
                    .iter()
                    .any(|attr| self.injectivefd(seal, &KeySet::single(attr)))
                {
                    return true;
                }
                // A declared dependency whose image lands inside the gate.
                self.fds
                    .iter()
                    .any(|fd| &fd.lhs == seal && !fd.rhs.is_empty() && fd.rhs.is_subset(partition))
            }
        }
    }
}

/// Standalone convenience wrapper over [`FdStore::compatible`] matching the
/// paper's free-function notation.
#[must_use]
pub fn compatible(store: &FdStore, gate: &Gate, seal: &KeySet) -> bool {
    store.compatible(gate, seal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks<const N: usize>(attrs: [&str; N]) -> KeySet {
        KeySet::from_attrs(attrs)
    }

    #[test]
    fn identity_is_injective() {
        let store = FdStore::new();
        assert!(store.injectivefd(&ks(["a"]), &ks(["a"])));
        assert!(store.injectivefd(&ks(["a", "b"]), &ks(["a", "b"])));
        assert!(!store.injectivefd(&ks(["a"]), &ks(["b"])));
    }

    #[test]
    fn declared_fd_holds() {
        let mut store = FdStore::new();
        store.declare(["company"], ["symbol"]);
        assert!(store.injectivefd(&ks(["company"]), &ks(["symbol"])));
        // Not symmetric unless declared.
        assert!(!store.injectivefd(&ks(["symbol"]), &ks(["company"])));
    }

    #[test]
    fn composition_closure() {
        let mut store = FdStore::new();
        store.declare(["a"], ["b"]);
        store.declare(["b"], ["c"]);
        assert!(store.injectivefd(&ks(["a"]), &ks(["c"])));
        // Three-step chains close too.
        store.declare(["c"], ["d"]);
        assert!(store.injectivefd(&ks(["a"]), &ks(["d"])));
    }

    #[test]
    fn window_query_compatibility() {
        // Paper Section IV-A1: WINDOW is OR_{id,window}; a stream sealed on
        // `id` or on `window` is compatible.
        let store = FdStore::new();
        let gate = Gate::keys(["id", "window"]);
        assert!(store.compatible(&gate, &ks(["window"])));
        assert!(store.compatible(&gate, &ks(["id"])));
        assert!(store.compatible(&gate, &ks(["id", "window"])));
        // Sealing on an unrelated attribute is not compatible.
        assert!(!store.compatible(&gate, &ks(["campaign"])));
    }

    #[test]
    fn campaign_query_compatibility() {
        // Seal_{campaign} is compatible only with CAMPAIGN (gate contains
        // `campaign`), not with POOR (gate = {id}) — Section V-A1.
        let store = FdStore::new();
        let campaign_gate = Gate::keys(["campaign", "id"]);
        let poor_gate = Gate::keys(["id"]);
        let seal = ks(["campaign"]);
        assert!(store.compatible(&campaign_gate, &seal));
        assert!(!store.compatible(&poor_gate, &seal));
    }

    #[test]
    fn composite_seal_not_projected() {
        // Seal on {campaign,id} must NOT be compatible with gate {campaign}:
        // the projection (campaign,id) -> campaign is not injective, so a
        // campaign partition is never known complete from composite seals.
        let store = FdStore::new();
        let gate = Gate::keys(["campaign"]);
        assert!(!store.compatible(&gate, &ks(["campaign", "id"])));
    }

    #[test]
    fn declared_fd_enables_compatibility() {
        // Company name sealed; component partitioned by stock symbol.
        let mut store = FdStore::new();
        store.declare(["company"], ["symbol"]);
        let gate = Gate::keys(["symbol"]);
        assert!(store.compatible(&gate, &ks(["company"])));
        // But not by headquarters city (not injective, never declared).
        let city_gate = Gate::keys(["city"]);
        assert!(!store.compatible(&city_gate, &ks(["company"])));
    }

    #[test]
    fn wildcard_gate_is_finest_partitioning() {
        let store = FdStore::new();
        assert!(store.compatible(&Gate::Wildcard, &ks(["anything"])));
        assert!(!store.compatible(&Gate::Wildcard, &KeySet::new()));
    }

    #[test]
    fn empty_gate_or_seal_never_compatible() {
        let store = FdStore::new();
        assert!(!store.compatible(&Gate::Keys(KeySet::new()), &ks(["k"])));
        assert!(!store.compatible(&Gate::keys(["g"]), &KeySet::new()));
    }
}
