//! The reconciliation procedure — the paper's Fig. 10.
//!
//! After inference, each output interface carries a list `Labels` of derived
//! stream labels (one per path × inbound stream). Reconciliation resolves
//! the internal labels:
//!
//! ```text
//! Taint ∈ Labels
//! ----------------------------
//! Rep ? Diverge : Run
//!
//! ∃gate. NDRead_gate ∈ Labels   ¬protected(NDRead_gate)
//! -----------------------------------------------------
//! Rep ? Inst : Run
//! ```
//!
//! where
//!
//! ```text
//! protected(NDRead_gate) ≡ ∀l ∈ Labels. l = NDRead_gate ∨
//!                          ∃key. l = Seal_key ∧ compatible(gate, key)
//! ```
//!
//! Finally the labels are merged: internal labels are stripped (a *protected*
//! `NDRead` contributes the deterministic default `Async`) and the label of
//! highest severity remains.

use crate::fd::FdStore;
use crate::keys::KeySet;
use crate::label::Label;
use serde::{Deserialize, Serialize};

/// One inference result feeding reconciliation: the derived label plus the
/// seal key of the path's *input* stream (if it was sealed).
///
/// Protection is checked against input seals: a rendezvous path whose input
/// stream is sealed protects reads even when the seal key does not survive
/// the path's projection (the consumer delays reads per *input* partition,
/// regardless of what the path emits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Derived {
    /// The label derived by inference.
    pub label: Label,
    /// The input stream's seal key, when the input was `Seal_key`.
    pub input_seal: Option<KeySet>,
}

impl From<Label> for Derived {
    fn from(label: Label) -> Self {
        let input_seal = match &label {
            Label::Seal(k) => Some(k.clone()),
            _ => None,
        };
        Derived { label, input_seal }
    }
}

/// The outcome of reconciling one output interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reconciliation {
    /// The labels derived by inference for this interface.
    pub derived: Vec<Label>,
    /// Labels added by the Fig. 10 rules.
    pub added: Vec<Label>,
    /// Which `NDRead` labels were protected by compatible seals.
    pub protected: Vec<Label>,
    /// The final merged label for the interface.
    pub merged: Label,
}

/// Is the given `NDRead_gate` protected within `entries`?
///
/// Every sibling entry must be the same `NDRead` or carry a seal (on its
/// input stream, or as its derived label) compatible with the gate.
/// (Vacuously true when the `NDRead` is the only entry: an order-sensitive
/// read path with no other inputs reads state no other stream perturbs.)
#[must_use]
pub fn protected(nd_read: &Label, entries: &[Derived], fds: &FdStore) -> bool {
    let Label::NDRead(gate) = nd_read else {
        return false;
    };
    entries.iter().all(|e| {
        if e.label == *nd_read {
            return true;
        }
        let seal = match (&e.input_seal, &e.label) {
            (Some(k), _) => Some(k),
            (None, Label::Seal(k)) => Some(k),
            _ => None,
        };
        seal.is_some_and(|k| fds.compatible(gate, k))
    })
}

/// Apply the Fig. 10 reconciliation rules and merge, returning the final
/// label for an output interface whose inference produced `entries`.
///
/// `rep` is the component's replication flag (`Rep: true`).
#[must_use]
pub fn reconcile(entries: Vec<Derived>, rep: bool, fds: &FdStore) -> Reconciliation {
    let derived: Vec<Label> = entries.iter().map(|e| e.label.clone()).collect();
    let mut added = Vec::new();
    let mut protected_labels = Vec::new();

    // Rule: Taint ∈ Labels ⇒ Rep ? Diverge : Run.
    if derived.contains(&Label::Taint) {
        added.push(if rep { Label::Diverge } else { Label::Run });
    }

    // Rule: an unprotected NDRead ⇒ Rep ? Inst : Run.
    let mut seen_nd: Vec<&Label> = Vec::new();
    for l in derived.iter().filter(|l| matches!(l, Label::NDRead(_))) {
        if seen_nd.contains(&l) {
            continue;
        }
        seen_nd.push(l);
        if protected(l, &entries, fds) {
            protected_labels.push(l.clone());
        } else {
            let escalation = if rep { Label::Inst } else { Label::Run };
            if !added.contains(&escalation) {
                added.push(escalation);
            }
        }
    }

    // Merge: strip internal labels; protected NDReads contribute Async
    // (deterministic contents, unordered); return the most severe survivor.
    // An interface with no surviving labels defaults to the conservative
    // Async (the caller records a warning if it was never fed at all).
    let mut merged: Option<Label> = None;
    for l in derived.iter().chain(added.iter()) {
        if l.is_internal() {
            continue;
        }
        merged = Some(match merged {
            None => l.clone(),
            Some(cur) => cur.join(l.clone()),
        });
    }
    if !protected_labels.is_empty() {
        merged = Some(match merged {
            None => Label::Async,
            Some(cur) => cur.join(Label::Async),
        });
    }
    let merged = merged.unwrap_or(Label::Async);

    Reconciliation {
        derived,
        added,
        protected: protected_labels,
        merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Gate;
    use crate::keys::KeySet;

    fn fds() -> FdStore {
        FdStore::new()
    }

    fn nd(gate: &[&str]) -> Label {
        Label::NDRead(Gate::Keys(KeySet::from_attrs(gate.iter().copied())))
    }

    /// Test helper: reconcile plain labels (input seals inferred from
    /// `Seal` labels via the `From` impl).
    fn rec(labels: Vec<Label>, rep: bool, fds: &FdStore) -> Reconciliation {
        reconcile(labels.into_iter().map(Derived::from).collect(), rep, fds)
    }

    #[test]
    fn taint_escalates_to_run_without_rep() {
        let r = rec(vec![Label::Taint, Label::Async], false, &fds());
        assert_eq!(r.added, vec![Label::Run]);
        assert_eq!(r.merged, Label::Run);
    }

    #[test]
    fn taint_escalates_to_diverge_with_rep() {
        let r = rec(vec![Label::Taint, Label::Async], true, &fds());
        assert_eq!(r.added, vec![Label::Diverge]);
        assert_eq!(r.merged, Label::Diverge);
    }

    #[test]
    fn unprotected_ndread_escalates_to_inst_with_rep() {
        // POOR at the replicated Report: {Async (click path), NDRead_id}.
        let r = rec(vec![Label::Async, nd(&["id"])], true, &fds());
        assert_eq!(r.added, vec![Label::Inst]);
        assert_eq!(r.merged, Label::Inst);
    }

    #[test]
    fn unprotected_ndread_escalates_to_run_without_rep() {
        let r = rec(vec![Label::Async, nd(&["id"])], false, &fds());
        assert_eq!(r.added, vec![Label::Run]);
        assert_eq!(r.merged, Label::Run);
    }

    #[test]
    fn protected_ndread_merges_to_async() {
        // CAMPAIGN at Report: {Seal_campaign (click path), NDRead_{campaign,id}}.
        let labels = vec![Label::seal(["campaign"]), nd(&["campaign", "id"])];
        let r = rec(labels, true, &fds());
        assert!(r.added.is_empty());
        assert_eq!(r.protected.len(), 1);
        // Merge: max severity of {Seal(1)} plus protected-NDRead's Async(2).
        assert_eq!(r.merged, Label::Async);
    }

    #[test]
    fn lone_ndread_is_vacuously_protected() {
        let r = rec(vec![nd(&["id"])], true, &fds());
        assert!(r.added.is_empty());
        assert_eq!(r.merged, Label::Async);
    }

    #[test]
    fn incompatible_seal_does_not_protect() {
        // Seal on campaign cannot protect NDRead over {id} (POOR).
        let labels = vec![Label::seal(["campaign"]), nd(&["id"])];
        let r = rec(labels, true, &fds());
        assert_eq!(r.added, vec![Label::Inst]);
        assert_eq!(r.merged, Label::Inst);
    }

    #[test]
    fn two_distinct_ndreads_do_not_protect_each_other() {
        let labels = vec![nd(&["a"]), nd(&["b"])];
        let r = rec(labels, false, &fds());
        assert_eq!(r.added, vec![Label::Run]);
        assert_eq!(r.merged, Label::Run);
    }

    #[test]
    fn identical_ndreads_protect_each_other() {
        let labels = vec![nd(&["a"]), nd(&["a"])];
        let r = rec(labels, false, &fds());
        assert!(r.added.is_empty());
        assert_eq!(r.merged, Label::Async);
    }

    #[test]
    fn seal_only_interface_keeps_seal_label() {
        let r = rec(vec![Label::seal(["batch"])], false, &fds());
        assert_eq!(r.merged, Label::seal(["batch"]));
    }

    #[test]
    fn mixed_seal_and_async_merges_to_async() {
        let r = rec(vec![Label::seal(["batch"]), Label::Async], false, &fds());
        assert_eq!(r.merged, Label::Async);
    }

    #[test]
    fn taint_and_protected_ndread_together() {
        // Taint dominates: even a protected read cannot save tainted state.
        let labels = vec![Label::Taint, Label::seal(["k"]), nd(&["k"])];
        let r = rec(labels, true, &fds());
        assert!(r.added.contains(&Label::Diverge));
        assert_eq!(r.merged, Label::Diverge);
    }

    #[test]
    fn empty_labels_default_async() {
        let r = rec(vec![], false, &fds());
        assert_eq!(r.merged, Label::Async);
    }

    #[test]
    fn diverge_input_dominates_merge() {
        let r = rec(vec![Label::Diverge, Label::Async], false, &fds());
        assert_eq!(r.merged, Label::Diverge);
    }

    #[test]
    fn protection_respects_declared_fds() {
        let mut store = FdStore::new();
        store.declare(["company"], ["symbol"]);
        let labels = vec![Label::seal(["company"]), nd(&["symbol"])];
        let r = rec(labels, true, &store);
        assert!(r.added.is_empty());
        assert_eq!(r.merged, Label::Async);
    }
}
