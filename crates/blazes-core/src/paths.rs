//! Dataflow path machinery: interface-level strongly connected components,
//! cycle collapse and topological ordering (paper Section V-A).
//!
//! > "To rule out infinite paths, [Blazes] reduces each cycle in the graph to
//! > a single node with a collapsed label by selecting the label of highest
//! > severity among the cycle members."
//!
//! Cycles are detected at *interface* granularity, not component
//! granularity: a cycle exists only if some component path links the
//! component's cyclic input back to its cyclic output. This matches the
//! paper's footnote 3 — `Cache` and `Report` form no cycle even though
//! streams run both ways between them, because `Cache` provides no internal
//! path from its response input (`r`) to its request output (`q`); `Cache`
//! alone *is* cyclic through its gossip self-edge.
//!
//! We build a bipartite graph of interface nodes (`In(component, iface)` and
//! `Out(component, iface)`), with an edge per component path (`In → Out`)
//! and per stream (`Out → In`), run Tarjan's algorithm, and collapse each
//! non-trivial SCC into one analysis node whose paths all carry the most
//! severe annotation found on the cycle, with an empty attribute lineage so
//! seals are conservatively dropped when chased through a cycle.

use crate::annotation::{ComponentAnnotation, Gate};
use crate::graph::{ComponentId, DataflowGraph, Endpoint};
use std::collections::BTreeMap;

/// A reference to a specific interface of a specific component.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InterfaceRef {
    /// Owning component.
    pub component: ComponentId,
    /// Interface name on that component.
    pub iface: String,
}

impl std::fmt::Display for InterfaceRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}.{}", self.component.0, self.iface)
    }
}

/// A node of the interface graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IfaceNode {
    /// An input interface.
    In(InterfaceRef),
    /// An output interface.
    Out(InterfaceRef),
}

impl IfaceNode {
    /// The owning component.
    #[must_use]
    pub fn component(&self) -> ComponentId {
        match self {
            IfaceNode::In(r) | IfaceNode::Out(r) => r.component,
        }
    }

    /// The interface reference.
    #[must_use]
    pub fn iface_ref(&self) -> &InterfaceRef {
        match self {
            IfaceNode::In(r) | IfaceNode::Out(r) => r,
        }
    }
}

/// One strongly connected component of the interface graph.
#[derive(Debug, Clone)]
pub struct IfaceScc {
    /// Member interface nodes.
    pub nodes: Vec<IfaceNode>,
    /// Components touched by the SCC.
    pub components: Vec<ComponentId>,
    /// Non-trivial (a real cycle)?
    pub collapsed: bool,
    /// Display name: the component name, or `scc(...)` when collapsed.
    pub name: String,
    /// True if any touched component is replicated.
    pub rep: bool,
    /// For collapsed SCCs: the most severe annotation among the paths lying
    /// on the cycle. Paths into a collapsed SCC are analyzed with this
    /// annotation.
    pub collapsed_annotation: Option<ComponentAnnotation>,
}

/// The condensation of the interface graph, in topological order.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// SCCs indexed by position.
    pub sccs: Vec<IfaceScc>,
    /// SCC index per interface node.
    pub scc_of: BTreeMap<IfaceNode, usize>,
    /// SCC indices in topological order (producers before consumers).
    pub topo: Vec<usize>,
}

impl Condensation {
    /// The SCC containing a given output interface, if known.
    #[must_use]
    pub fn scc_of_output(&self, iface: &InterfaceRef) -> Option<&IfaceScc> {
        self.scc_of
            .get(&IfaceNode::Out(iface.clone()))
            .map(|&i| &self.sccs[i])
    }
}

/// Build the interface-level condensation of `graph`.
#[must_use]
pub fn condense(graph: &DataflowGraph) -> Condensation {
    // Enumerate interface nodes.
    let mut nodes: Vec<IfaceNode> = Vec::new();
    let mut index_of: BTreeMap<IfaceNode, usize> = BTreeMap::new();
    for (ci, comp) in graph.components().iter().enumerate() {
        let cid = ComponentId(ci);
        for iface in comp.input_interfaces() {
            let n = IfaceNode::In(InterfaceRef {
                component: cid,
                iface: iface.to_string(),
            });
            index_of.entry(n.clone()).or_insert_with(|| {
                nodes.push(n);
                nodes.len() - 1
            });
        }
        for iface in comp.output_interfaces() {
            let n = IfaceNode::Out(InterfaceRef {
                component: cid,
                iface: iface.to_string(),
            });
            index_of.entry(n.clone()).or_insert_with(|| {
                nodes.push(n);
                nodes.len() - 1
            });
        }
    }

    // Adjacency: path edges In -> Out, stream edges Out -> In.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ci, comp) in graph.components().iter().enumerate() {
        let cid = ComponentId(ci);
        for p in &comp.paths {
            let from = index_of[&IfaceNode::In(InterfaceRef {
                component: cid,
                iface: p.from.clone(),
            })];
            let to = index_of[&IfaceNode::Out(InterfaceRef {
                component: cid,
                iface: p.to.clone(),
            })];
            adj[from].push(to);
        }
    }
    for stream in graph.streams() {
        if let (Endpoint::Component(a, out), Endpoint::Component(b, inp)) =
            (&stream.from, &stream.to)
        {
            let from = index_of[&IfaceNode::Out(InterfaceRef {
                component: *a,
                iface: out.clone(),
            })];
            let to = index_of[&IfaceNode::In(InterfaceRef {
                component: *b,
                iface: inp.clone(),
            })];
            adj[from].push(to);
        }
    }

    let scc_groups = tarjan(&adj);

    // Assemble SCC descriptors.
    let mut sccs: Vec<IfaceScc> = Vec::with_capacity(scc_groups.len());
    let mut scc_of: BTreeMap<IfaceNode, usize> = BTreeMap::new();
    for group in &scc_groups {
        let idx = sccs.len();
        let members: Vec<IfaceNode> = group.iter().map(|&i| nodes[i].clone()).collect();
        for m in &members {
            scc_of.insert(m.clone(), idx);
        }
        // Non-trivial: more than one node, or a single node with a self-edge
        // (impossible here since the graph is bipartite In/Out).
        let collapsed = members.len() > 1;
        let mut comps: Vec<ComponentId> = members.iter().map(IfaceNode::component).collect();
        comps.sort_unstable();
        comps.dedup();
        let rep = comps.iter().any(|&c| graph.component(c).rep);
        let name = if collapsed {
            let mut names: Vec<&str> = comps
                .iter()
                .map(|&c| graph.component(c).name.as_str())
                .collect();
            names.sort_unstable();
            names.dedup();
            format!("scc({})", names.join(","))
        } else {
            graph.component(members[0].component()).name.clone()
        };
        let collapsed_annotation = if collapsed {
            Some(cycle_annotation(graph, &members))
        } else {
            None
        };
        sccs.push(IfaceScc {
            nodes: members,
            components: comps,
            collapsed,
            name,
            rep,
            collapsed_annotation,
        });
    }

    // Kahn topological sort over the condensation.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); sccs.len()];
    let mut indegree = vec![0usize; sccs.len()];
    for (i, targets) in adj.iter().enumerate() {
        let si = scc_of[&nodes[i]];
        for &t in targets {
            let st = scc_of[&nodes[t]];
            if si != st {
                out_edges[si].push(st);
                indegree[st] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..sccs.len()).filter(|&i| indegree[i] == 0).collect();
    let mut topo = Vec::with_capacity(sccs.len());
    while let Some(i) = queue.pop() {
        topo.push(i);
        for &j in &out_edges[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(j);
            }
        }
    }
    debug_assert_eq!(topo.len(), sccs.len(), "condensation must be acyclic");

    Condensation { sccs, scc_of, topo }
}

/// The most severe annotation among the paths lying on the cycle (both
/// endpoints inside the SCC). Gates of equally-severe order-sensitive
/// annotations are intersected (conservative).
fn cycle_annotation(graph: &DataflowGraph, members: &[IfaceNode]) -> ComponentAnnotation {
    let mut best: Option<ComponentAnnotation> = None;
    let contains = |n: &IfaceNode| members.contains(n);
    for (ci, comp) in graph.components().iter().enumerate() {
        let cid = ComponentId(ci);
        for p in &comp.paths {
            let from = IfaceNode::In(InterfaceRef {
                component: cid,
                iface: p.from.clone(),
            });
            let to = IfaceNode::Out(InterfaceRef {
                component: cid,
                iface: p.to.clone(),
            });
            if !(contains(&from) && contains(&to)) {
                continue;
            }
            best = Some(match best.take() {
                None => p.annotation.clone(),
                Some(cur) => {
                    use std::cmp::Ordering;
                    match p.annotation.severity().cmp(&cur.severity()) {
                        Ordering::Greater => p.annotation.clone(),
                        Ordering::Less => cur,
                        Ordering::Equal => merge_equal_severity(cur, &p.annotation),
                    }
                }
            });
        }
    }
    // A non-trivial SCC always contains at least one path edge.
    best.expect("collapsed SCC must contain a component path")
}

fn merge_equal_severity(
    cur: ComponentAnnotation,
    other: &ComponentAnnotation,
) -> ComponentAnnotation {
    use ComponentAnnotation as CA;
    match (cur, other) {
        (CA::OR(a), CA::OR(b)) => CA::OR(intersect_gates(a, b)),
        (CA::OW(a), CA::OW(b)) => CA::OW(intersect_gates(a, b)),
        (c, _) => c,
    }
}

fn intersect_gates(a: Gate, b: &Gate) -> Gate {
    match (a, b) {
        (Gate::Wildcard, g) => g.clone(),
        (g, Gate::Wildcard) => g,
        (Gate::Keys(x), Gate::Keys(y)) => Gate::Keys(x.intersection(y)),
    }
}

/// Iterative Tarjan SCC over an adjacency list. Returns groups of vertex
/// indices in reverse topological order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index: Vec<Option<usize>> = vec![None; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start].is_some() {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = Some(next_index);
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                match index[w] {
                    None => {
                        index[w] = Some(next_index);
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    }
                    Some(widx) => {
                        if on_stack[w] {
                            lowlink[v] = lowlink[v].min(widx);
                        }
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v].unwrap() {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Enumerate up to `limit` source→sink interface-SCC paths through the
/// condensation, for reporting and complexity benchmarks.
#[must_use]
pub fn enumerate_paths(
    graph: &DataflowGraph,
    cond: &Condensation,
    limit: usize,
) -> Vec<Vec<usize>> {
    let mut starts: Vec<usize> = Vec::new();
    let mut ends: Vec<usize> = Vec::new();
    for stream in graph.streams() {
        if let (Endpoint::Source(_), Endpoint::Component(c, iface)) = (&stream.from, &stream.to) {
            let n = cond.scc_of[&IfaceNode::In(InterfaceRef {
                component: *c,
                iface: iface.clone(),
            })];
            if !starts.contains(&n) {
                starts.push(n);
            }
        }
        if let (Endpoint::Component(c, iface), Endpoint::Sink(_)) = (&stream.from, &stream.to) {
            let n = cond.scc_of[&IfaceNode::Out(InterfaceRef {
                component: *c,
                iface: iface.clone(),
            })];
            if !ends.contains(&n) {
                ends.push(n);
            }
        }
    }

    // SCC-level adjacency: path edges + stream edges.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); cond.sccs.len()];
    let mut add_edge = |from: usize, to: usize| {
        if from != to && !out[from].contains(&to) {
            out[from].push(to);
        }
    };
    for (ci, comp) in graph.components().iter().enumerate() {
        let cid = ComponentId(ci);
        for p in &comp.paths {
            let a = cond.scc_of[&IfaceNode::In(InterfaceRef {
                component: cid,
                iface: p.from.clone(),
            })];
            let b = cond.scc_of[&IfaceNode::Out(InterfaceRef {
                component: cid,
                iface: p.to.clone(),
            })];
            add_edge(a, b);
        }
    }
    for stream in graph.streams() {
        if let (Endpoint::Component(a, o), Endpoint::Component(b, i)) = (&stream.from, &stream.to) {
            let na = cond.scc_of[&IfaceNode::Out(InterfaceRef {
                component: *a,
                iface: o.clone(),
            })];
            let nb = cond.scc_of[&IfaceNode::In(InterfaceRef {
                component: *b,
                iface: i.clone(),
            })];
            add_edge(na, nb);
        }
    }

    let mut results = Vec::new();
    for &s in &starts {
        let mut stack = vec![(s, vec![s])];
        while let Some((v, path)) = stack.pop() {
            if results.len() >= limit {
                return results;
            }
            if ends.contains(&v) {
                results.push(path.clone());
            }
            for &w in &out[v] {
                if !path.contains(&w) {
                    let mut p = path.clone();
                    p.push(w);
                    stack.push((w, p));
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::ComponentAnnotation as CA;

    fn linear_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new("linear");
        let s = g.add_source("src", &["a"]);
        let x = g.add_component("X");
        g.add_path(x, "in", "out", CA::cr());
        let y = g.add_component("Y");
        g.add_path(y, "in", "out", CA::cw());
        let k = g.add_sink("sink");
        g.connect_source(s, x, "in");
        g.connect(x, "out", y, "in");
        g.connect_sink(y, "out", k);
        g
    }

    #[test]
    fn linear_graph_all_trivial() {
        let g = linear_graph();
        let cond = condense(&g);
        assert!(cond.sccs.iter().all(|s| !s.collapsed));
        // 2 components × (1 in + 1 out) = 4 interface nodes.
        assert_eq!(cond.sccs.len(), 4);
    }

    #[test]
    fn topo_order_respects_stream_edges() {
        let g = linear_graph();
        let cond = condense(&g);
        let x = g.component_by_name("X").unwrap();
        let y = g.component_by_name("Y").unwrap();
        let out_x = cond.scc_of[&IfaceNode::Out(InterfaceRef {
            component: x,
            iface: "out".into(),
        })];
        let in_y = cond.scc_of[&IfaceNode::In(InterfaceRef {
            component: y,
            iface: "in".into(),
        })];
        let px = cond.topo.iter().position(|&n| n == out_x).unwrap();
        let py = cond.topo.iter().position(|&n| n == in_y).unwrap();
        assert!(px < py, "X.out must precede Y.in");
    }

    #[test]
    fn two_component_cycle_collapses() {
        let mut g = DataflowGraph::new("cycle");
        let s = g.add_source("src", &["a"]);
        let x = g.add_component("X");
        g.add_path(x, "in", "out", CA::cr());
        let y = g.add_component("Y");
        g.add_path(y, "in", "out", CA::ow(["a"]));
        let k = g.add_sink("sink");
        g.connect_source(s, x, "in");
        g.connect(x, "out", y, "in");
        g.connect(y, "out", x, "in"); // back edge: X <-> Y through both paths
        g.connect_sink(y, "out", k);

        let cond = condense(&g);
        let collapsed: Vec<_> = cond.sccs.iter().filter(|s| s.collapsed).collect();
        assert_eq!(collapsed.len(), 1);
        let scc = collapsed[0];
        assert_eq!(scc.components.len(), 2);
        assert_eq!(scc.collapsed_annotation, Some(CA::ow(["a"])));
        assert!(scc.name.starts_with("scc("));
    }

    #[test]
    fn self_edge_collapses_interfaces() {
        // The paper's Cache: gossip self-edge response -> response.
        let mut g = DataflowGraph::new("cache");
        let s = g.add_source("resp", &["k"]);
        let cache = g.add_component("Cache");
        g.add_path(cache, "request", "response", CA::cr());
        g.add_path(cache, "response", "response", CA::cw());
        g.add_path(cache, "request", "request", CA::cr());
        let k = g.add_sink("analyst");
        g.connect_source(s, cache, "response");
        g.connect(cache, "response", cache, "response");
        g.connect_sink(cache, "response", k);

        let cond = condense(&g);
        let collapsed: Vec<_> = cond.sccs.iter().filter(|s| s.collapsed).collect();
        assert_eq!(collapsed.len(), 1);
        // The cycle holds In(response) and Out(response) only.
        assert_eq!(collapsed[0].nodes.len(), 2);
        assert_eq!(collapsed[0].collapsed_annotation, Some(CA::cw()));
        // The request interfaces stay trivial (footnote 3).
        let req_in = IfaceNode::In(InterfaceRef {
            component: g.component_by_name("Cache").unwrap(),
            iface: "request".into(),
        });
        assert!(!cond.sccs[cond.scc_of[&req_in]].collapsed);
    }

    #[test]
    fn cache_report_mutual_streams_no_cycle() {
        // Paper footnote 3: streams run Cache->Report and Report->Cache, but
        // Cache has no internal path response->request, so no cycle forms.
        let mut g = DataflowGraph::new("ad");
        let clicks = g.add_source("clicks", &["id"]);
        let requests = g.add_source("requests", &["id"]);
        let report = g.add_component("Report");
        g.add_path(report, "click", "response", CA::cw());
        g.add_path(report, "request", "response", CA::cr());
        let cache = g.add_component("Cache");
        g.add_path(cache, "request", "response", CA::cr());
        g.add_path(cache, "response", "response", CA::cw());
        g.add_path(cache, "request", "request", CA::cr());
        let k = g.add_sink("analyst");
        g.connect_source(clicks, report, "click");
        g.connect_source(requests, cache, "request");
        g.connect(cache, "request", report, "request");
        g.connect(report, "response", cache, "response");
        g.connect(cache, "response", cache, "response");
        g.connect_sink(cache, "response", k);

        let cond = condense(&g);
        let collapsed: Vec<_> = cond.sccs.iter().filter(|s| s.collapsed).collect();
        // Only Cache's response in/out cycle collapses; Report stays out.
        assert_eq!(collapsed.len(), 1);
        assert_eq!(collapsed[0].components.len(), 1);
        assert_eq!(
            collapsed[0].components[0],
            g.component_by_name("Cache").unwrap()
        );
    }

    #[test]
    fn gate_intersection_on_equal_severity() {
        let a = Gate::keys(["x", "y"]);
        let b = Gate::keys(["y", "z"]);
        assert_eq!(intersect_gates(a, &b), Gate::keys(["y"]));
        assert_eq!(intersect_gates(Gate::Wildcard, &b), b);
    }

    #[test]
    fn enumerate_paths_linear() {
        let g = linear_graph();
        let cond = condense(&g);
        let paths = enumerate_paths(&g, &cond, 16);
        assert_eq!(paths.len(), 1);
        // In(X) -> Out(X) -> In(Y) -> Out(Y): 4 SCC hops.
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn diamond_graph_two_paths() {
        let mut g = DataflowGraph::new("diamond");
        let s = g.add_source("src", &["a"]);
        let top = g.add_component("Top");
        g.add_path(top, "in", "l", CA::cr());
        g.add_path(top, "in", "r", CA::cr());
        let left = g.add_component("Left");
        g.add_path(left, "in", "out", CA::cr());
        let right = g.add_component("Right");
        g.add_path(right, "in", "out", CA::cr());
        let bottom = g.add_component("Bottom");
        g.add_path(bottom, "in", "out", CA::cw());
        let k = g.add_sink("sink");
        g.connect_source(s, top, "in");
        g.connect(top, "l", left, "in");
        g.connect(top, "r", right, "in");
        g.connect(left, "out", bottom, "in");
        g.connect(right, "out", bottom, "in");
        g.connect_sink(bottom, "out", k);

        let cond = condense(&g);
        let paths = enumerate_paths(&g, &cond, 16);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn tarjan_on_simple_cycle() {
        // 0 -> 1 -> 2 -> 0, plus 2 -> 3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let sccs = tarjan(&adj);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().any(|s| s == &vec![0, 1, 2]));
        assert!(sccs.iter().any(|s| s == &vec![3]));
    }
}
