//! Stream labels — the paper's Fig. 8.
//!
//! A label describes the class of anomalies a stream instance may exhibit.
//! `NDRead_gate` and `Taint` are *internal*: the analysis uses them while
//! reducing component paths but they are never attached to an output stream.
//! The remaining labels are ranked by severity; the merge step returns the
//! most severe label derived for an output interface.

use crate::annotation::Gate;
use crate::keys::KeySet;
use crate::severity::Severity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stream label (paper Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Internal (severity 0): the output may have *transient*
    /// nondeterministic contents from reads racing ahead of inputs, over
    /// partitions `gate`. Resolved by the reconciliation procedure.
    NDRead(Gate),
    /// Internal (severity 0): component state may be corrupted by unordered
    /// inputs. Resolved by the reconciliation procedure.
    Taint,
    /// Severity 1: deterministic contents, punctuated on `key`.
    Seal(KeySet),
    /// Severity 2: deterministic contents, nondeterministic order. The
    /// conservative default for inter-component communication.
    Async,
    /// Severity 3: cross-run nondeterminism — different contents across runs
    /// over the same inputs. Breaks replay-based fault tolerance.
    Run,
    /// Severity 4: cross-instance nondeterminism — replicas emit different
    /// contents within one run. Breaks replication-based fault tolerance.
    Inst,
    /// Severity 5: persistent replica divergence.
    Diverge,
}

impl Label {
    /// NDRead over an explicit gate key set.
    pub fn nd_read<I, S>(gate: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Label::NDRead(Gate::Keys(KeySet::from_attrs(gate)))
    }

    /// A seal label on `key`.
    pub fn seal<I, S>(key: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Label::Seal(KeySet::from_attrs(key))
    }

    /// The severity rank of this label (paper Fig. 8).
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            Label::NDRead(_) | Label::Taint => Severity::INTERNAL,
            Label::Seal(_) => Severity::SEAL,
            Label::Async => Severity::ASYNC,
            Label::Run => Severity::RUN,
            Label::Inst => Severity::INST,
            Label::Diverge => Severity::DIVERGE,
        }
    }

    /// Internal labels are never attached to an output stream.
    #[must_use]
    pub fn is_internal(&self) -> bool {
        matches!(self, Label::NDRead(_) | Label::Taint)
    }

    /// Whether the label denotes one of Section III-A's anomalies
    /// (`Run`, `Inst`, `Diverge`).
    #[must_use]
    pub fn is_anomalous(&self) -> bool {
        self.severity().is_anomalous()
    }

    /// The anomalies (columns of Fig. 8) the label admits, as a compact set
    /// of flags.
    #[must_use]
    pub fn anomalies(&self) -> AnomalySet {
        match self {
            // Fig. 8 rows: NDRead and Taint admit transient replica
            // disagreement (and divergence, for Taint) pending
            // reconciliation; we report the post-reconciliation view.
            Label::NDRead(_) => AnomalySet {
                nd_order: true,
                nd_contents: true,
                transient_divergence: false,
                persistent_divergence: false,
            },
            Label::Taint => AnomalySet {
                nd_order: false,
                nd_contents: false,
                transient_divergence: true,
                persistent_divergence: true,
            },
            Label::Seal(_) => AnomalySet {
                nd_order: true,
                nd_contents: false,
                transient_divergence: false,
                persistent_divergence: false,
            },
            Label::Async => AnomalySet {
                nd_order: true,
                nd_contents: false,
                transient_divergence: false,
                persistent_divergence: false,
            },
            Label::Run => AnomalySet {
                nd_order: true,
                nd_contents: true,
                transient_divergence: false,
                persistent_divergence: false,
            },
            Label::Inst => AnomalySet {
                nd_order: true,
                nd_contents: true,
                transient_divergence: true,
                persistent_divergence: false,
            },
            Label::Diverge => AnomalySet {
                nd_order: true,
                nd_contents: true,
                transient_divergence: true,
                persistent_divergence: true,
            },
        }
    }

    /// Pick the more severe of two labels (ties keep `self`).
    #[must_use]
    pub fn join(self, other: Label) -> Label {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::NDRead(gate) => write!(f, "NDRead_{{{gate}}}"),
            Label::Taint => write!(f, "Taint"),
            Label::Seal(key) => write!(f, "Seal_{{{key}}}"),
            Label::Async => write!(f, "Async"),
            Label::Run => write!(f, "Run"),
            Label::Inst => write!(f, "Inst"),
            Label::Diverge => write!(f, "Diverge"),
        }
    }
}

/// Which anomaly columns of the paper's Fig. 8 a label admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalySet {
    /// Nondeterministic delivery order.
    pub nd_order: bool,
    /// Nondeterministic stream contents.
    pub nd_contents: bool,
    /// Transient replica divergence.
    pub transient_divergence: bool,
    /// Persistent replica divergence.
    pub persistent_divergence: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_labels() -> Vec<Label> {
        vec![
            Label::nd_read(["g"]),
            Label::Taint,
            Label::seal(["k"]),
            Label::Async,
            Label::Run,
            Label::Inst,
            Label::Diverge,
        ]
    }

    #[test]
    fn severities_match_figure_8() {
        assert_eq!(Label::nd_read(["g"]).severity(), Severity(0));
        assert_eq!(Label::Taint.severity(), Severity(0));
        assert_eq!(Label::seal(["k"]).severity(), Severity(1));
        assert_eq!(Label::Async.severity(), Severity(2));
        assert_eq!(Label::Run.severity(), Severity(3));
        assert_eq!(Label::Inst.severity(), Severity(4));
        assert_eq!(Label::Diverge.severity(), Severity(5));
    }

    #[test]
    fn internal_labels_flagged() {
        assert!(Label::nd_read(["g"]).is_internal());
        assert!(Label::Taint.is_internal());
        for l in [
            Label::seal(["k"]),
            Label::Async,
            Label::Run,
            Label::Inst,
            Label::Diverge,
        ] {
            assert!(!l.is_internal(), "{l} must not be internal");
        }
    }

    #[test]
    fn join_picks_higher_severity() {
        assert_eq!(Label::Async.join(Label::Run), Label::Run);
        assert_eq!(Label::Diverge.join(Label::Async), Label::Diverge);
        // Tie keeps the receiver.
        assert_eq!(
            Label::seal(["a"]).join(Label::seal(["b"])),
            Label::seal(["a"])
        );
    }

    #[test]
    fn join_monotone_in_severity() {
        for a in all_labels() {
            for b in all_labels() {
                let j = a.clone().join(b.clone());
                assert!(j.severity() >= a.severity());
                assert!(j.severity() >= b.severity());
            }
        }
    }

    #[test]
    fn anomaly_columns_figure_8() {
        // Async: ND order only.
        let a = Label::Async.anomalies();
        assert!(a.nd_order && !a.nd_contents && !a.transient_divergence);
        // Run adds ND contents.
        let r = Label::Run.anomalies();
        assert!(r.nd_order && r.nd_contents && !r.transient_divergence);
        // Inst adds transient divergence.
        let i = Label::Inst.anomalies();
        assert!(i.transient_divergence && !i.persistent_divergence);
        // Diverge admits everything.
        let d = Label::Diverge.anomalies();
        assert!(d.nd_order && d.nd_contents && d.transient_divergence && d.persistent_divergence);
        // Seal: punctuated partitions still arrive in ND order.
        let s = Label::seal(["k"]).anomalies();
        assert!(s.nd_order && !s.nd_contents);
    }

    #[test]
    fn display_notation() {
        assert_eq!(
            Label::nd_read(["campaign"]).to_string(),
            "NDRead_{campaign}"
        );
        assert_eq!(Label::seal(["batch"]).to_string(), "Seal_{batch}");
        assert_eq!(Label::Async.to_string(), "Async");
    }
}
