//! # blazes-core
//!
//! An implementation of the **Blazes** coordination-analysis framework from
//! *"Blazes: Coordination Analysis for Distributed Programs"* (Alvaro, Conway,
//! Hellerstein, Maier — ICDE 2014).
//!
//! Blazes decides, for a distributed dataflow of black-box components, *where*
//! coordination is required to rule out consistency anomalies and *which*
//! coordination mechanism is cheapest at each such location:
//!
//! 1. Programmers (or a language front end such as
//!    [`blazes-bloom`](../blazes_bloom/index.html)) annotate each path through
//!    a component with one of the **C.O.W.R.** labels of the paper's Fig. 7
//!    ([`annotation::ComponentAnnotation`]): confluent/order-sensitive ×
//!    read-only/write.
//! 2. Input streams optionally carry [`annotation::StreamAnnotation`]s:
//!    `Seal_key` (punctuated partitions) and `Rep` (replicated delivery).
//! 3. The analyzer ([`analysis::Analyzer`]) enumerates dataflow paths,
//!    collapses cycles, and rewrites labels using the **inference rules** of
//!    Fig. 9 ([`inference`]) and the **reconciliation procedure** of Fig. 10
//!    ([`reconcile`]), producing an output [`label::Label`] per stream:
//!    `Async`, `Run`, `Inst` or `Diverge` (Fig. 8).
//! 4. Where the derived label signals an anomaly, the synthesizer
//!    ([`strategy`]) picks coordination: a cheap **sealing** protocol when a
//!    sealed input is [`fd::compatible`] with the component's partitioning,
//!    otherwise a total-**ordering** service.
//!
//! Compatibility between seals and partitions is decided by *injective
//! functional dependencies* chased transitively through the dataflow
//! ([`fd::FdStore`]).
//!
//! ## Quick example
//!
//! ```
//! use blazes_core::prelude::*;
//!
//! // The Storm wordcount topology of the paper's Section VI-A.
//! let mut g = DataflowGraph::new("wordcount");
//! let tweets = g.add_source("tweets", &["word", "batch"]);
//! let splitter = g.add_component("Splitter");
//! g.add_path(splitter, "tweets", "words", ComponentAnnotation::cr());
//! let count = g.add_component("Count");
//! g.add_path(count, "words", "counts",
//!            ComponentAnnotation::ow(["word", "batch"]));
//! let commit = g.add_component("Commit");
//! g.add_path(commit, "counts", "db", ComponentAnnotation::cw());
//! let sink = g.add_sink("db-sink");
//!
//! g.connect_source(tweets, splitter, "tweets");
//! g.connect(splitter, "words", count, "words");
//! g.connect(count, "counts", commit, "counts");
//! g.connect_sink(commit, "db", sink);
//!
//! // Unsealed: replay is nondeterministic -> `Run`.
//! let outcome = Analyzer::new(&g).run().unwrap();
//! assert_eq!(outcome.sink_label(sink).unwrap(), &Label::Run);
//!
//! // Sealed on `batch`: the OW_{word,batch} component is compatible -> `Async`.
//! let mut sealed = g.clone();
//! sealed.seal_source(tweets, ["batch"]);
//! let outcome = Analyzer::new(&sealed).run().unwrap();
//! assert_eq!(outcome.sink_label(sink).unwrap(), &Label::Async);
//! ```

pub mod advisor;
pub mod analysis;
pub mod annotation;
pub mod derivation;
pub mod error;
pub mod fd;
pub mod graph;
pub mod inference;
pub mod keys;
pub mod label;
pub mod paths;
pub mod placement;
pub mod reconcile;
pub mod severity;
pub mod spec;
pub mod strategy;

/// Convenient re-exports of the types used in almost every interaction with
/// the analyzer.
pub mod prelude {
    pub use crate::analysis::{AnalysisOutcome, Analyzer};
    pub use crate::annotation::{ComponentAnnotation, Gate, StreamAnnotation};
    pub use crate::error::{BlazesError, Result};
    pub use crate::fd::FdStore;
    pub use crate::graph::{ComponentId, DataflowGraph, SinkId, SourceId};
    pub use crate::keys::KeySet;
    pub use crate::label::Label;
    pub use crate::placement::{CoordDirective, CoordinationSpec};
    pub use crate::severity::Severity;
    pub use crate::spec::Spec;
    pub use crate::strategy::{CoordinationPlan, Strategy};
}

pub use prelude::*;
