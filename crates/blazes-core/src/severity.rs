//! The severity lattice that orders stream labels (paper Fig. 8) and
//! component annotations (paper Fig. 7).
//!
//! Blazes' merge step picks the label of *highest severity* among the labels
//! accumulated for an output interface, so severities form a total order.
//! Internal labels (`NDRead`, `Taint`) share the lowest rank: they are
//! bookkeeping for the analysis and are never emitted as a stream label.

use serde::{Deserialize, Serialize};

/// A point in the severity order of the paper's Fig. 8.
///
/// `Severity` is deliberately a plain integer newtype rather than an enum so
/// that future label families (e.g. user-defined lattice extensions) can slot
/// in between existing ranks without renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Severity(pub u8);

impl Severity {
    /// Internal labels: `NDRead_gate` and `Taint` (rank 0).
    pub const INTERNAL: Severity = Severity(0);
    /// `Seal_key` (rank 1): deterministic contents, punctuated partitions.
    pub const SEAL: Severity = Severity(1);
    /// `Async` (rank 2): deterministic contents, nondeterministic order.
    pub const ASYNC: Severity = Severity(2);
    /// `Run` (rank 3): cross-run nondeterminism.
    pub const RUN: Severity = Severity(3);
    /// `Inst` (rank 4): cross-instance nondeterminism.
    pub const INST: Severity = Severity(4);
    /// `Diverge` (rank 5): permanent replica divergence.
    pub const DIVERGE: Severity = Severity(5);

    /// Least upper bound: the more severe of the two.
    #[must_use]
    pub fn join(self, other: Severity) -> Severity {
        self.max(other)
    }

    /// Greatest lower bound: the less severe of the two.
    #[must_use]
    pub fn meet(self, other: Severity) -> Severity {
        self.min(other)
    }

    /// Whether the severity corresponds to an anomaly the paper's Section
    /// III-A enumerates (`Run`, `Inst` or `Diverge`): coordination is
    /// required to remove it.
    #[must_use]
    pub fn is_anomalous(self) -> bool {
        self >= Severity::RUN
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_matches_figure_8() {
        assert!(Severity::INTERNAL < Severity::SEAL);
        assert!(Severity::SEAL < Severity::ASYNC);
        assert!(Severity::ASYNC < Severity::RUN);
        assert!(Severity::RUN < Severity::INST);
        assert!(Severity::INST < Severity::DIVERGE);
    }

    #[test]
    fn join_is_max() {
        assert_eq!(Severity::ASYNC.join(Severity::RUN), Severity::RUN);
        assert_eq!(Severity::RUN.join(Severity::ASYNC), Severity::RUN);
        assert_eq!(
            Severity::DIVERGE.join(Severity::INTERNAL),
            Severity::DIVERGE
        );
    }

    #[test]
    fn meet_is_min() {
        assert_eq!(Severity::ASYNC.meet(Severity::RUN), Severity::ASYNC);
        assert_eq!(Severity::SEAL.meet(Severity::SEAL), Severity::SEAL);
    }

    #[test]
    fn anomalous_threshold() {
        assert!(!Severity::INTERNAL.is_anomalous());
        assert!(!Severity::SEAL.is_anomalous());
        assert!(!Severity::ASYNC.is_anomalous());
        assert!(Severity::RUN.is_anomalous());
        assert!(Severity::INST.is_anomalous());
        assert!(Severity::DIVERGE.is_anomalous());
    }

    #[test]
    fn join_lattice_laws() {
        let all = [
            Severity::INTERNAL,
            Severity::SEAL,
            Severity::ASYNC,
            Severity::RUN,
            Severity::INST,
            Severity::DIVERGE,
        ];
        for &a in &all {
            // idempotence
            assert_eq!(a.join(a), a);
            for &b in &all {
                // commutativity
                assert_eq!(a.join(b), b.join(a));
                for &c in &all {
                    // associativity
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }
}
