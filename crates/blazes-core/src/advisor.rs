//! Dataflow design advice — the paper's Section X ("was it the right
//! dataflow?") as an implemented extension.
//!
//! The conclusions sketch design patterns that a compiler could check:
//!
//! > "replication should be placed upstream of confluent components. Since
//! > they are tolerant of all input orders, inexpensive replication
//! > strategies (like gossip) are sufficient … Similarly, caches should be
//! > placed downstream of confluent components."
//!
//! plus *coordination locality*: partitions should not be mastered across
//! many producers when a seal strategy is in play. [`advise`] inspects a
//! graph and its analysis outcome and emits the corresponding findings.

use crate::analysis::AnalysisOutcome;
use crate::graph::{ComponentId, DataflowGraph, Endpoint};
use crate::label::Label;
use std::fmt;

/// One piece of placement advice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Advice {
    /// A replicated component has at least one non-confluent path: cheap
    /// replication (gossip) is unsafe here; move replication upstream of
    /// confluent components or coordinate.
    ReplicationOverNonConfluent {
        /// The offending component.
        component: ComponentId,
    },
    /// A stateful component consumes a stream with nondeterministic
    /// contents (`Run` or worse): any caching/metering at this point will
    /// memoize nondeterminism. Place caches downstream of confluent
    /// components instead.
    CacheBelowNondeterminism {
        /// The consuming component.
        component: ComponentId,
        /// The offending input interface.
        input: String,
        /// The stream's label.
        label: Label,
    },
    /// An order-sensitive component is fed by an unsealed source even
    /// though its gate names the source's attributes: declaring a seal
    /// would replace global ordering with local sealing.
    SealOpportunity {
        /// The order-sensitive component.
        component: ComponentId,
        /// The candidate seal attributes (the gate).
        attrs: Vec<String>,
    },
}

impl Advice {
    /// Render with component names resolved.
    #[must_use]
    pub fn render(&self, graph: &DataflowGraph) -> String {
        match self {
            Advice::ReplicationOverNonConfluent { component } => format!(
                "component {:?} is replicated but not confluent: gossip-style replication \
                 is unsafe; place replication upstream of confluent components or coordinate",
                graph.component(*component).name
            ),
            Advice::CacheBelowNondeterminism {
                component,
                input,
                label,
            } => format!(
                "component {:?} accumulates state from input {:?} labeled {label}: caching \
                 below nondeterministic streams memoizes anomalies; cache downstream of \
                 confluent components instead",
                graph.component(*component).name,
                input
            ),
            Advice::SealOpportunity { component, attrs } => format!(
                "component {:?} is order-sensitive over {{{}}}: declaring a seal on those \
                 attributes at the source would avoid global ordering",
                graph.component(*component).name,
                attrs.join(",")
            ),
        }
    }
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::ReplicationOverNonConfluent { component } => {
                write!(f, "replication-over-non-confluent at #{}", component.0)
            }
            Advice::CacheBelowNondeterminism {
                component,
                input,
                label,
            } => {
                write!(
                    f,
                    "cache-below-nondeterminism at #{}.{input} ({label})",
                    component.0
                )
            }
            Advice::SealOpportunity { component, attrs } => {
                write!(
                    f,
                    "seal-opportunity at #{} on {{{}}}",
                    component.0,
                    attrs.join(",")
                )
            }
        }
    }
}

/// Inspect `graph` + `outcome` and produce placement advice.
#[must_use]
pub fn advise(graph: &DataflowGraph, outcome: &AnalysisOutcome) -> Vec<Advice> {
    let mut advice = Vec::new();

    for (ci, comp) in graph.components().iter().enumerate() {
        let id = ComponentId(ci);
        let non_confluent = comp.paths.iter().any(|p| !p.annotation.is_confluent());

        // Pattern 1: replication over non-confluent components.
        if comp.rep && non_confluent {
            advice.push(Advice::ReplicationOverNonConfluent { component: id });
        }

        // Pattern 2: stateful paths fed by nondeterministic-content streams.
        for p in &comp.paths {
            if !p.annotation.is_write() {
                continue;
            }
            for (sid, _) in graph.streams_into(id, &p.from) {
                let label = outcome.stream_label(sid);
                if label.severity() >= crate::severity::Severity::RUN {
                    let item = Advice::CacheBelowNondeterminism {
                        component: id,
                        input: p.from.clone(),
                        label: label.clone(),
                    };
                    if !advice.contains(&item) {
                        advice.push(item);
                    }
                }
            }
        }

        // Pattern 3: seal opportunities — an O-path whose gate names the
        // attributes of an unsealed source reachable upstream through
        // confluent components (which would preserve the seal).
        for p in &comp.paths {
            let Some(gate) = p.annotation.gate().and_then(|g| g.as_keys()) else {
                continue;
            };
            for src in upstream_sources_via_confluent(graph, id, &p.from) {
                let source = graph.source(src);
                if source.annotation.seal.is_none() && gate.iter().any(|a| source.attrs.contains(a))
                {
                    let attrs: Vec<String> = gate
                        .iter()
                        .filter(|a| source.attrs.contains(a))
                        .map(str::to_string)
                        .collect();
                    let item = Advice::SealOpportunity {
                        component: id,
                        attrs,
                    };
                    if !advice.contains(&item) {
                        advice.push(item);
                    }
                }
            }
        }
    }
    advice
}

/// Sources feeding `(component, input)` either directly or through chains
/// of fully-confluent components (which a seal would survive).
fn upstream_sources_via_confluent(
    graph: &DataflowGraph,
    component: ComponentId,
    input: &str,
) -> Vec<crate::graph::SourceId> {
    let mut sources = Vec::new();
    let mut seen: Vec<(ComponentId, String)> = Vec::new();
    let mut frontier = vec![(component, input.to_string())];
    while let Some((c, i)) = frontier.pop() {
        if seen.contains(&(c, i.clone())) {
            continue;
        }
        seen.push((c, i.clone()));
        for (_, stream) in graph.streams_into(c, &i) {
            match &stream.from {
                Endpoint::Source(s) => {
                    if !sources.contains(s) {
                        sources.push(*s);
                    }
                }
                Endpoint::Component(up, out_iface) => {
                    let up_comp = graph.component(*up);
                    if up_comp.paths.iter().all(|p| p.annotation.is_confluent()) {
                        for p in up_comp.paths_to(out_iface) {
                            frontier.push((*up, p.from.clone()));
                        }
                    }
                }
                Endpoint::Sink(_) => {}
            }
        }
    }
    sources
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::annotation::ComponentAnnotation;
    use crate::graph::DataflowGraph;

    fn analyzed(g: &DataflowGraph) -> AnalysisOutcome {
        Analyzer::new(g).run().unwrap()
    }

    #[test]
    fn flags_replicated_non_confluent_component() {
        let mut g = DataflowGraph::new("rep");
        let s = g.add_source("s", &["id"]);
        let c = g.add_component("Report");
        g.set_rep(c, true);
        g.add_path(c, "in", "out", ComponentAnnotation::or(["id"]));
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let advice = advise(&g, &analyzed(&g));
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::ReplicationOverNonConfluent { .. })));
    }

    #[test]
    fn flags_cache_below_nondeterminism() {
        // OW (unsealed) -> Run output feeding a CW "cache".
        let mut g = DataflowGraph::new("cache");
        let s = g.add_source("s", &["id"]);
        let producer = g.add_component("Producer");
        g.add_path(producer, "in", "out", ComponentAnnotation::ow(["id"]));
        let cache = g.add_component("Cache");
        g.add_path(cache, "in", "out", ComponentAnnotation::cw());
        let k = g.add_sink("k");
        g.connect_source(s, producer, "in");
        g.connect(producer, "out", cache, "in");
        g.connect_sink(cache, "out", k);
        let advice = advise(&g, &analyzed(&g));
        let cache_id = g.component_by_name("Cache").unwrap();
        assert!(advice.iter().any(|a| matches!(
            a,
            Advice::CacheBelowNondeterminism { component, .. } if *component == cache_id
        )));
    }

    #[test]
    fn flags_seal_opportunity_on_unsealed_source() {
        let mut g = DataflowGraph::new("op");
        let s = g.add_source("clicks", &["id", "campaign"]);
        let c = g.add_component("Agg");
        g.add_path(c, "in", "out", ComponentAnnotation::ow(["campaign"]));
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let advice = advise(&g, &analyzed(&g));
        assert!(advice.iter().any(|a| matches!(
            a,
            Advice::SealOpportunity { attrs, .. } if attrs == &vec!["campaign".to_string()]
        )));
        // Sealing the source removes the opportunity finding.
        g.seal_source(s, ["campaign"]);
        let advice = advise(&g, &analyzed(&g));
        assert!(!advice
            .iter()
            .any(|a| matches!(a, Advice::SealOpportunity { .. })));
    }

    #[test]
    fn clean_confluent_graph_gets_no_advice() {
        let mut g = DataflowGraph::new("clean");
        let s = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", ComponentAnnotation::cw());
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        assert!(advise(&g, &analyzed(&g)).is_empty());
    }

    #[test]
    fn advice_renders_with_names() {
        let mut g = DataflowGraph::new("r");
        let s = g.add_source("s", &["id"]);
        let c = g.add_component("Report");
        g.set_rep(c, true);
        g.add_path(c, "in", "out", ComponentAnnotation::or(["id"]));
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let advice = advise(&g, &analyzed(&g));
        let text = advice[0].render(&g);
        assert!(text.contains("Report"), "{text}");
    }
}
