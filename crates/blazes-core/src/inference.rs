//! The inference (reduction) rules for component paths — the paper's Fig. 9.
//!
//! Each rule takes an input stream label and a component-path annotation and
//! produces a derived stream label for the path. In the paper's notation:
//!
//! ```text
//! {Async, Run}  OR_gate            {Async, Run}  OW_gate
//! ------------------------- (1)    ------------------------- (2)
//!       NDRead_gate                        Taint
//!
//! Inst  {CW, OW_gate}              Seal_key  OW_gate  ¬compatible(gate,key)
//! ------------------------- (3)    ------------------------------------- (4)
//!       Taint                              Taint
//! ```
//!
//! When no rule applies, the default rule `(p)` preserves the input label
//! (chasing seal keys through the path's injective attribute lineage). A
//! *compatible* seal flowing into an order-sensitive path is consumed: the
//! component can process each sealed partition once its contents are known,
//! yielding deterministic-but-unordered output — label `Async`.

use crate::annotation::ComponentAnnotation;
use crate::fd::FdStore;
use crate::graph::PathSpec;
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which rule produced a derived label — used to render the derivation trees
/// of the paper's Section V-A4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// Fig. 9 rule 1: unordered input into an order-sensitive read path.
    R1,
    /// Fig. 9 rule 2: unordered input into an order-sensitive write path.
    R2,
    /// Fig. 9 rule 3: cross-instance-nondeterministic input into a stateful
    /// path.
    R3,
    /// Fig. 9 rule 4: an incompatibly sealed input into an order-sensitive
    /// write path.
    R4,
    /// A compatible seal consumed by an order-sensitive path: the partition
    /// barrier makes the output deterministic (but unordered).
    SealConsume,
    /// A seal that could not be chased through the path's attribute lineage
    /// (some key attribute is projected away): downgraded to `Async`.
    SealDropped,
    /// The default preservation rule `(p)`.
    Preserve,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::R1 => write!(f, "(1)"),
            Rule::R2 => write!(f, "(2)"),
            Rule::R3 => write!(f, "(3)"),
            Rule::R4 => write!(f, "(4)"),
            Rule::SealConsume => write!(f, "(s)"),
            Rule::SealDropped => write!(f, "(d)"),
            Rule::Preserve => write!(f, "(p)"),
        }
    }
}

/// Apply the Fig. 9 rules to one `(input label, path)` pair, returning the
/// derived label and the rule that fired.
///
/// Exactly one rule applies to any pair; the internal labels `NDRead` and
/// `Taint` never appear as *input* labels because they are stripped before a
/// stream label is published (see [`crate::reconcile`]).
#[must_use]
pub fn infer_path(input: &Label, path: &PathSpec, fds: &FdStore) -> (Label, Rule) {
    use ComponentAnnotation as CA;
    match (input, &path.annotation) {
        // Rule 1: {Async, Run} + OR_gate => NDRead_gate.
        (Label::Async | Label::Run, CA::OR(gate)) => (Label::NDRead(gate.clone()), Rule::R1),

        // Rule 2: {Async, Run} + OW_gate => Taint.
        (Label::Async | Label::Run, CA::OW(_)) => (Label::Taint, Rule::R2),

        // Rule 3: Inst + {CW, OW_gate} => Taint.
        (Label::Inst, CA::CW | CA::OW(_)) => (Label::Taint, Rule::R3),

        // Rule 4 and the compatible-seal case for OW.
        (Label::Seal(key), CA::OW(gate)) => {
            if fds.compatible(gate, key) {
                (Label::Async, Rule::SealConsume)
            } else {
                (Label::Taint, Rule::R4)
            }
        }

        // Sealed input into an order-sensitive read path: compatible seals
        // are consumed (deterministic once the partition closes); an
        // incompatible seal still allows transient nondeterministic reads.
        (Label::Seal(key), CA::OR(gate)) => {
            if fds.compatible(gate, key) {
                (Label::Async, Rule::SealConsume)
            } else {
                (Label::NDRead(gate.clone()), Rule::R1)
            }
        }

        // Seals survive confluent paths, chased through the lineage.
        (Label::Seal(key), CA::CR | CA::CW) => match path.map_seal_key(key) {
            Some(mapped) => (Label::Seal(mapped), Rule::Preserve),
            None => (Label::Async, Rule::SealDropped),
        },

        // Default rule (p): everything else preserves the input label.
        (other, _) => (other.clone(), Rule::Preserve),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::{ComponentAnnotation as CA, Gate};
    use std::collections::BTreeMap;

    fn path(ann: CA) -> PathSpec {
        PathSpec {
            from: "in".into(),
            to: "out".into(),
            annotation: ann,
            lineage: None,
        }
    }

    fn fds() -> FdStore {
        FdStore::new()
    }

    #[test]
    fn rule_1_async_or() {
        let (l, r) = infer_path(&Label::Async, &path(CA::or(["id"])), &fds());
        assert_eq!(l, Label::nd_read(["id"]));
        assert_eq!(r, Rule::R1);
    }

    #[test]
    fn rule_1_run_or() {
        let (l, r) = infer_path(&Label::Run, &path(CA::or(["id"])), &fds());
        assert_eq!(l, Label::nd_read(["id"]));
        assert_eq!(r, Rule::R1);
    }

    #[test]
    fn rule_2_async_ow() {
        let (l, r) = infer_path(&Label::Async, &path(CA::ow(["word", "batch"])), &fds());
        assert_eq!(l, Label::Taint);
        assert_eq!(r, Rule::R2);
    }

    #[test]
    fn rule_3_inst_cw() {
        let (l, r) = infer_path(&Label::Inst, &path(CA::cw()), &fds());
        assert_eq!(l, Label::Taint);
        assert_eq!(r, Rule::R3);
    }

    #[test]
    fn rule_3_inst_ow() {
        let (l, r) = infer_path(&Label::Inst, &path(CA::ow(["x"])), &fds());
        assert_eq!(l, Label::Taint);
        assert_eq!(r, Rule::R3);
    }

    #[test]
    fn rule_4_incompatible_seal_ow() {
        // Seal on campaign into OW over {id}: not compatible -> Taint.
        let (l, r) = infer_path(&Label::seal(["campaign"]), &path(CA::ow(["id"])), &fds());
        assert_eq!(l, Label::Taint);
        assert_eq!(r, Rule::R4);
    }

    #[test]
    fn compatible_seal_consumed_by_ow() {
        // The sealed wordcount: Seal_batch + OW_{word,batch} -> Async.
        let (l, r) = infer_path(
            &Label::seal(["batch"]),
            &path(CA::ow(["word", "batch"])),
            &fds(),
        );
        assert_eq!(l, Label::Async);
        assert_eq!(r, Rule::SealConsume);
    }

    #[test]
    fn compatible_seal_consumed_by_or() {
        let (l, r) = infer_path(
            &Label::seal(["window"]),
            &path(CA::or(["id", "window"])),
            &fds(),
        );
        assert_eq!(l, Label::Async);
        assert_eq!(r, Rule::SealConsume);
    }

    #[test]
    fn incompatible_seal_into_or_gives_ndread() {
        let (l, r) = infer_path(&Label::seal(["campaign"]), &path(CA::or(["id"])), &fds());
        assert_eq!(l, Label::NDRead(Gate::keys(["id"])));
        assert_eq!(r, Rule::R1);
    }

    #[test]
    fn seal_preserved_through_confluent_paths() {
        for ann in [CA::cr(), CA::cw()] {
            let (l, r) = infer_path(&Label::seal(["batch"]), &path(ann), &fds());
            assert_eq!(l, Label::seal(["batch"]));
            assert_eq!(r, Rule::Preserve);
        }
    }

    #[test]
    fn seal_chased_through_renaming_lineage() {
        let mut lineage = BTreeMap::new();
        lineage.insert("batch".to_string(), "epoch".to_string());
        let p = PathSpec {
            from: "in".into(),
            to: "out".into(),
            annotation: CA::cr(),
            lineage: Some(lineage),
        };
        let (l, r) = infer_path(&Label::seal(["batch"]), &p, &fds());
        assert_eq!(l, Label::seal(["epoch"]));
        assert_eq!(r, Rule::Preserve);
    }

    #[test]
    fn seal_dropped_when_key_projected_away() {
        let p = PathSpec {
            from: "in".into(),
            to: "out".into(),
            annotation: CA::cw(),
            lineage: Some(BTreeMap::new()),
        };
        let (l, r) = infer_path(&Label::seal(["batch"]), &p, &fds());
        assert_eq!(l, Label::Async);
        assert_eq!(r, Rule::SealDropped);
    }

    #[test]
    fn preservation_for_confluent_paths() {
        for input in [Label::Async, Label::Run, Label::Diverge] {
            let (l, r) = infer_path(&input, &path(CA::cr()), &fds());
            assert_eq!(l, input);
            assert_eq!(r, Rule::Preserve);
        }
        // Async through CW stays Async (confluence tolerates disorder).
        let (l, _) = infer_path(&Label::Async, &path(CA::cw()), &fds());
        assert_eq!(l, Label::Async);
        // Run through CW stays Run: contents were already nondeterministic.
        let (l, _) = infer_path(&Label::Run, &path(CA::cw()), &fds());
        assert_eq!(l, Label::Run);
    }

    #[test]
    fn diverge_propagates_through_everything() {
        for ann in [CA::cr(), CA::cw(), CA::or(["x"]), CA::ow(["x"])] {
            let (l, _) = infer_path(&Label::Diverge, &path(ann), &fds());
            assert_eq!(l, Label::Diverge);
        }
    }

    #[test]
    fn inst_preserved_through_read_paths() {
        // Rule 3 only fires for stateful paths; reads propagate Inst.
        let (l, r) = infer_path(&Label::Inst, &path(CA::cr()), &fds());
        assert_eq!((l, r), (Label::Inst, Rule::Preserve));
        let (l, r) = infer_path(&Label::Inst, &path(CA::or(["x"])), &fds());
        assert_eq!((l, r), (Label::Inst, Rule::Preserve));
    }

    #[test]
    fn wildcard_gate_accepts_any_seal() {
        let (l, r) = infer_path(&Label::seal(["anything"]), &path(CA::ow_star()), &fds());
        assert_eq!(l, Label::Async);
        assert_eq!(r, Rule::SealConsume);
    }

    #[test]
    fn declared_fd_enables_seal_consumption() {
        let mut store = FdStore::new();
        store.declare(["company"], ["symbol"]);
        let (l, r) = infer_path(&Label::seal(["company"]), &path(CA::ow(["symbol"])), &store);
        assert_eq!(l, Label::Async);
        assert_eq!(r, Rule::SealConsume);
    }
}
