//! Parser for the Blazes annotation file — the "grey box" input format of
//! the paper's Section VI (a small YAML subset, parsed by hand so the crate
//! stays dependency-free).
//!
//! The component sections follow the paper exactly:
//!
//! ```yaml
//! Splitter:
//!   annotation:
//!     - { from: tweets, to: words, label: CR }
//! Count:
//!   annotation:
//!     - { from: words, to: counts, label: OW, subscript: [word, batch] }
//! Commit:
//!   annotation: { from: counts, to: db, label: CW }
//! Report:
//!   Rep: true
//!   annotation:
//!     - { from: request, to: response, label: OR, subscript: [id] }
//! ```
//!
//! Three optional sections extend the paper's format so a complete dataflow
//! can live in one file (the paper obtains topology from the host engine):
//!
//! ```yaml
//! streams:
//!   - { name: tweets, attrs: [word, batch], seal: [batch], to: Splitter.tweets }
//! connections:
//!   - { from: Splitter.words, to: Count.words }
//! sinks:
//!   - { name: store, from: Commit.db }
//! ```

use crate::annotation::{ComponentAnnotation, Gate};
use crate::error::{BlazesError, Result};
use crate::graph::DataflowGraph;
use crate::keys::KeySet;
use std::collections::BTreeMap;

/// A parsed `- { from: .., to: .., label: .., subscript: [..] }` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationSpec {
    /// Input interface name.
    pub from: String,
    /// Output interface name.
    pub to: String,
    /// Parsed annotation.
    pub annotation: ComponentAnnotation,
}

/// A parsed component section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComponentSpec {
    /// Component name.
    pub name: String,
    /// `Rep: true` flag.
    pub rep: bool,
    /// Path annotations.
    pub annotations: Vec<AnnotationSpec>,
}

/// A parsed `streams:` entry (external source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSpec {
    /// Source name.
    pub name: String,
    /// Record attributes.
    pub attrs: Vec<String>,
    /// Optional seal key.
    pub seal: Option<Vec<String>>,
    /// Replicated delivery flag.
    pub rep: bool,
    /// Targets, as `Component.iface`.
    pub to: Vec<String>,
}

/// A parsed `connections:` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionSpec {
    /// Producer, as `Component.iface`.
    pub from: String,
    /// Consumer, as `Component.iface`.
    pub to: String,
    /// Optional declared seal on the intermediate stream.
    pub seal: Option<Vec<String>>,
}

/// A parsed `sinks:` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSpec {
    /// Sink name.
    pub name: String,
    /// Producer, as `Component.iface`.
    pub from: String,
}

/// A fully parsed spec file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Spec {
    /// Component sections in file order.
    pub components: Vec<ComponentSpec>,
    /// `streams:` section.
    pub streams: Vec<StreamSpec>,
    /// `connections:` section.
    pub connections: Vec<ConnectionSpec>,
    /// `sinks:` section.
    pub sinks: Vec<SinkSpec>,
}

impl Spec {
    /// Parse a spec file.
    pub fn parse(input: &str) -> Result<Spec> {
        Parser::new(input).parse()
    }

    /// Apply component annotations (and `Rep` flags) to an existing graph by
    /// component name. Components in the spec that are missing from the
    /// graph produce an error; extra graph components are left untouched.
    pub fn annotate(&self, graph: &mut DataflowGraph) -> Result<()> {
        for comp in &self.components {
            let id = graph.component_by_name(&comp.name)?;
            graph.set_rep(id, comp.rep);
            let paths = comp
                .annotations
                .iter()
                .map(|a| crate::graph::PathSpec {
                    from: a.from.clone(),
                    to: a.to.clone(),
                    annotation: a.annotation.clone(),
                    lineage: None,
                })
                .collect();
            graph.replace_component_paths(id, paths);
        }
        Ok(())
    }

    /// Build a complete dataflow graph (requires `streams:` and `sinks:`
    /// sections).
    pub fn to_graph(&self, name: impl Into<String>) -> Result<DataflowGraph> {
        let mut g = DataflowGraph::new(name);
        let mut comp_ids = BTreeMap::new();
        for comp in &self.components {
            let id = g.add_component(&comp.name);
            g.set_rep(id, comp.rep);
            for a in &comp.annotations {
                g.add_path(id, &a.from, &a.to, a.annotation.clone());
            }
            comp_ids.insert(comp.name.clone(), id);
        }
        for s in &self.streams {
            let attrs: Vec<&str> = s.attrs.iter().map(String::as_str).collect();
            let src = g.add_source(&s.name, &attrs);
            if let Some(seal) = &s.seal {
                g.seal_source(src, seal.iter().cloned());
            }
            if s.rep {
                g.set_source_rep(src, true);
            }
            for target in &s.to {
                let (comp, iface) = split_ref(target)?;
                let id = *comp_ids
                    .get(comp)
                    .ok_or_else(|| BlazesError::UnknownEntity {
                        kind: "component",
                        name: comp.to_string(),
                    })?;
                g.connect_source(src, id, iface);
            }
        }
        for c in &self.connections {
            let (fc, fi) = split_ref(&c.from)?;
            let (tc, ti) = split_ref(&c.to)?;
            let from = *comp_ids.get(fc).ok_or_else(|| BlazesError::UnknownEntity {
                kind: "component",
                name: fc.to_string(),
            })?;
            let to = *comp_ids.get(tc).ok_or_else(|| BlazesError::UnknownEntity {
                kind: "component",
                name: tc.to_string(),
            })?;
            let sid = g.connect(from, fi, to, ti);
            if let Some(seal) = &c.seal {
                g.annotate_stream(
                    sid,
                    crate::annotation::StreamAnnotation {
                        seal: Some(KeySet::from_attrs(seal.iter().cloned())),
                        rep: false,
                    },
                );
            }
        }
        for s in &self.sinks {
            let (fc, fi) = split_ref(&s.from)?;
            let from = *comp_ids.get(fc).ok_or_else(|| BlazesError::UnknownEntity {
                kind: "component",
                name: fc.to_string(),
            })?;
            let sink = g.add_sink(&s.name);
            g.connect_sink(from, fi, sink);
        }
        g.validate()?;
        Ok(g)
    }
}

fn split_ref(s: &str) -> Result<(&str, &str)> {
    s.split_once('.').ok_or_else(|| BlazesError::SpecParse {
        line: 0,
        message: format!("expected Component.iface reference, got {s:?}"),
    })
}

// ---------------------------------------------------------------------
// Parsing machinery
// ---------------------------------------------------------------------

/// A value inside a flow map: a bare scalar or a list of scalars.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FlowValue {
    Scalar(String),
    List(Vec<String>),
}

impl FlowValue {
    fn as_scalar(&self, line: usize, key: &str) -> Result<&str> {
        match self {
            FlowValue::Scalar(s) => Ok(s),
            FlowValue::List(_) => Err(BlazesError::SpecParse {
                line,
                message: format!("key {key:?} expects a scalar, found a list"),
            }),
        }
    }

    fn as_list(&self) -> Vec<String> {
        match self {
            FlowValue::Scalar(s) => vec![s.clone()],
            FlowValue::List(l) => l.clone(),
        }
    }
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>, // (1-based line number, content)
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let lines = input
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse(mut self) -> Result<Spec> {
        let mut spec = Spec::default();
        while let Some((line_no, line)) = self.peek() {
            let indent = indent_of(line);
            if indent != 0 {
                return Err(BlazesError::SpecParse {
                    line: line_no,
                    message: "expected a top-level section (no indentation)".to_string(),
                });
            }
            let trimmed = line.trim();
            let Some(head) = trimmed.strip_suffix(':') else {
                return Err(BlazesError::SpecParse {
                    line: line_no,
                    message: format!("expected `name:` header, got {trimmed:?}"),
                });
            };
            match head {
                "streams" => {
                    self.bump();
                    for (ln, map) in self.parse_list_items()? {
                        spec.streams.push(parse_stream_entry(ln, &map)?);
                    }
                }
                "connections" => {
                    self.bump();
                    for (ln, map) in self.parse_list_items()? {
                        spec.connections.push(parse_connection_entry(ln, &map)?);
                    }
                }
                "sinks" => {
                    self.bump();
                    for (ln, map) in self.parse_list_items()? {
                        spec.sinks.push(parse_sink_entry(ln, &map)?);
                    }
                }
                name => {
                    self.bump();
                    spec.components.push(self.parse_component(name)?);
                }
            }
        }
        Ok(spec)
    }

    /// Parse the indented body of a component section.
    fn parse_component(&mut self, name: &str) -> Result<ComponentSpec> {
        let mut comp = ComponentSpec {
            name: name.to_string(),
            ..ComponentSpec::default()
        };
        while let Some((line_no, line)) = self.peek() {
            if indent_of(line) == 0 {
                break;
            }
            let trimmed = line.trim();
            if let Some(value) = trimmed.strip_prefix("Rep:") {
                self.bump();
                comp.rep = match value.trim() {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(BlazesError::SpecParse {
                            line: line_no,
                            message: format!("Rep expects true/false, got {other:?}"),
                        })
                    }
                };
            } else if let Some(rest) = trimmed.strip_prefix("annotation:") {
                self.bump();
                let rest = rest.trim();
                if rest.is_empty() {
                    // Block form: list items and/or named-query lines follow.
                    for (ln, map) in self.parse_list_items()? {
                        comp.annotations.push(parse_annotation_entry(ln, &map)?);
                    }
                } else {
                    // Inline form: `annotation: { ... }`.
                    let map = parse_flow_map(line_no, rest)?;
                    comp.annotations
                        .push(parse_annotation_entry(line_no, &map)?);
                }
            } else if let Some((query, rest)) = trimmed.split_once(':') {
                // Named query alternative, as in the paper's Report section:
                //   POOR: { from: request, to: response, label: OR, subscript: [id] }
                self.bump();
                let rest = rest.trim();
                if rest.is_empty() {
                    return Err(BlazesError::SpecParse {
                        line: line_no,
                        message: format!("named entry {query:?} expects an inline {{...}} map"),
                    });
                }
                let map = parse_flow_map(line_no, rest)?;
                comp.annotations
                    .push(parse_annotation_entry(line_no, &map)?);
            } else {
                return Err(BlazesError::SpecParse {
                    line: line_no,
                    message: format!("unexpected line in component section: {trimmed:?}"),
                });
            }
        }
        Ok(comp)
    }

    /// Parse consecutive `- { ... }` items (more-indented lines).
    fn parse_list_items(&mut self) -> Result<Vec<(usize, BTreeMap<String, FlowValue>)>> {
        let mut items = Vec::new();
        while let Some((line_no, line)) = self.peek() {
            let trimmed = line.trim();
            if indent_of(line) == 0 || !trimmed.starts_with('-') {
                break;
            }
            self.bump();
            let body = trimmed.trim_start_matches('-').trim();
            items.push((line_no, parse_flow_map(line_no, body)?));
        }
        Ok(items)
    }
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Parse an inline flow map: `{ from: tweets, to: words, label: CR,
/// subscript: [word, batch] }`.
fn parse_flow_map(line: usize, s: &str) -> Result<BTreeMap<String, FlowValue>> {
    let s = s.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| BlazesError::SpecParse {
            line,
            message: format!("expected {{...}} map, got {s:?}"),
        })?;
    let mut map = BTreeMap::new();
    for pair in split_top_level(inner) {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair.split_once(':').ok_or_else(|| BlazesError::SpecParse {
            line,
            message: format!("expected `key: value` inside map, got {pair:?}"),
        })?;
        let key = key.trim().to_string();
        let value = value.trim();
        let parsed = if let Some(list) = value.strip_prefix('[') {
            let list = list
                .strip_suffix(']')
                .ok_or_else(|| BlazesError::SpecParse {
                    line,
                    message: format!("unterminated list in {pair:?}"),
                })?;
            FlowValue::List(
                list.split(',')
                    .map(|x| x.trim().to_string())
                    .filter(|x| !x.is_empty())
                    .collect(),
            )
        } else {
            FlowValue::Scalar(value.to_string())
        };
        map.insert(key, parsed);
    }
    Ok(map)
}

/// Split on commas that are not inside brackets.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_annotation_entry(
    line: usize,
    map: &BTreeMap<String, FlowValue>,
) -> Result<AnnotationSpec> {
    let from = get_scalar(line, map, "from")?;
    let to = get_scalar(line, map, "to")?;
    let label = get_scalar(line, map, "label")?;
    let subscript = map.get("subscript").map(FlowValue::as_list);
    let annotation = match (label.as_str(), subscript) {
        ("CR", None) => ComponentAnnotation::CR,
        ("CW", None) => ComponentAnnotation::CW,
        ("CR" | "CW", Some(_)) => {
            return Err(BlazesError::SpecParse {
                line,
                message: "confluent labels take no subscript".to_string(),
            })
        }
        ("OR", Some(s)) => ComponentAnnotation::OR(Gate::Keys(KeySet::from_attrs(s))),
        ("OW", Some(s)) => ComponentAnnotation::OW(Gate::Keys(KeySet::from_attrs(s))),
        ("OR" | "OR*", None) => ComponentAnnotation::OR(Gate::Wildcard),
        ("OW" | "OW*", None) => ComponentAnnotation::OW(Gate::Wildcard),
        (other, _) => {
            return Err(BlazesError::SpecParse {
                line,
                message: format!("unknown label {other:?} (expected CR, CW, OR, OW)"),
            })
        }
    };
    Ok(AnnotationSpec {
        from,
        to,
        annotation,
    })
}

fn parse_stream_entry(line: usize, map: &BTreeMap<String, FlowValue>) -> Result<StreamSpec> {
    Ok(StreamSpec {
        name: get_scalar(line, map, "name")?,
        attrs: map.get("attrs").map(FlowValue::as_list).unwrap_or_default(),
        seal: map.get("seal").map(FlowValue::as_list),
        rep: map
            .get("rep")
            .map(|v| v.as_scalar(line, "rep").map(|s| s == "true"))
            .transpose()?
            .unwrap_or(false),
        to: map
            .get("to")
            .map(FlowValue::as_list)
            .ok_or_else(|| BlazesError::SpecParse {
                line,
                message: "stream entry requires `to:`".to_string(),
            })?,
    })
}

fn parse_connection_entry(
    line: usize,
    map: &BTreeMap<String, FlowValue>,
) -> Result<ConnectionSpec> {
    Ok(ConnectionSpec {
        from: get_scalar(line, map, "from")?,
        to: get_scalar(line, map, "to")?,
        seal: map.get("seal").map(FlowValue::as_list),
    })
}

fn parse_sink_entry(line: usize, map: &BTreeMap<String, FlowValue>) -> Result<SinkSpec> {
    Ok(SinkSpec {
        name: get_scalar(line, map, "name")?,
        from: get_scalar(line, map, "from")?,
    })
}

fn get_scalar(line: usize, map: &BTreeMap<String, FlowValue>, key: &str) -> Result<String> {
    map.get(key)
        .ok_or_else(|| BlazesError::SpecParse {
            line,
            message: format!("missing required key {key:?}"),
        })?
        .as_scalar(line, key)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::label::Label;

    const WORDCOUNT_SPEC: &str = r#"
# The Storm wordcount topology (paper Section VI-A1).
Splitter:
  annotation:
    - { from: tweets, to: words, label: CR }
Count:
  annotation:
    - { from: words, to: counts, label: OW, subscript: [word, batch] }
Commit:
  annotation: { from: counts, to: db, label: CW }
streams:
  - { name: tweets, attrs: [word, batch], to: Splitter.tweets }
connections:
  - { from: Splitter.words, to: Count.words }
  - { from: Count.counts, to: Commit.counts }
sinks:
  - { name: store, from: Commit.db }
"#;

    #[test]
    fn parse_wordcount_spec() {
        let spec = Spec::parse(WORDCOUNT_SPEC).unwrap();
        assert_eq!(spec.components.len(), 3);
        assert_eq!(spec.components[0].name, "Splitter");
        assert_eq!(
            spec.components[1].annotations[0].annotation,
            ComponentAnnotation::ow(["word", "batch"])
        );
        assert_eq!(spec.streams.len(), 1);
        assert_eq!(spec.connections.len(), 2);
        assert_eq!(spec.sinks.len(), 1);
    }

    #[test]
    fn spec_to_graph_analyzes_like_hand_built() {
        let spec = Spec::parse(WORDCOUNT_SPEC).unwrap();
        let g = spec.to_graph("wordcount").unwrap();
        let out = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("store").unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Run));
    }

    #[test]
    fn sealed_stream_in_spec() {
        let sealed = WORDCOUNT_SPEC.replace(
            "attrs: [word, batch], to:",
            "attrs: [word, batch], seal: [batch], to:",
        );
        let spec = Spec::parse(&sealed).unwrap();
        assert_eq!(spec.streams[0].seal, Some(vec!["batch".to_string()]));
        let g = spec.to_graph("wordcount").unwrap();
        let out = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("store").unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn rep_flag_and_named_queries() {
        let spec = Spec::parse(
            r#"
Report:
  Rep: true
  annotation:
    - { from: click, to: response, label: CW }
  POOR: { from: request, to: response, label: OR, subscript: [id] }
  THRESH: { from: request, to: response, label: CR }
"#,
        )
        .unwrap();
        let comp = &spec.components[0];
        assert!(comp.rep);
        assert_eq!(comp.annotations.len(), 3);
        assert_eq!(
            comp.annotations[1].annotation,
            ComponentAnnotation::or(["id"])
        );
        assert_eq!(comp.annotations[2].annotation, ComponentAnnotation::CR);
    }

    #[test]
    fn wildcard_subscript() {
        let spec = Spec::parse("C:\n  annotation: { from: a, to: b, label: OW }\n").unwrap();
        assert_eq!(
            spec.components[0].annotations[0].annotation,
            ComponentAnnotation::ow_star()
        );
    }

    #[test]
    fn unknown_label_rejected() {
        let err = Spec::parse("C:\n  annotation: { from: a, to: b, label: XX }\n").unwrap_err();
        assert!(matches!(err, BlazesError::SpecParse { .. }));
    }

    #[test]
    fn subscript_on_confluent_rejected() {
        let err = Spec::parse("C:\n  annotation: { from: a, to: b, label: CR, subscript: [x] }\n")
            .unwrap_err();
        assert!(matches!(err, BlazesError::SpecParse { .. }));
    }

    #[test]
    fn missing_required_key_rejected() {
        let err = Spec::parse("C:\n  annotation: { from: a, label: CR }\n").unwrap_err();
        assert!(matches!(err, BlazesError::SpecParse { .. }));
    }

    #[test]
    fn annotate_existing_graph() {
        let mut g = DataflowGraph::new("wc");
        let src = g.add_source("tweets", &["word", "batch"]);
        let c = g.add_component("Count");
        // Placeholder annotation, to be replaced by the spec.
        g.add_path(c, "words", "counts", ComponentAnnotation::cr());
        let sink = g.add_sink("store");
        g.connect_source(src, c, "words");
        g.connect_sink(c, "counts", sink);

        let spec = Spec::parse(
            "Count:\n  annotation: { from: words, to: counts, label: OW, subscript: [word, batch] }\n",
        )
        .unwrap();
        spec.annotate(&mut g).unwrap();
        assert_eq!(
            g.component(c).paths[0].annotation,
            ComponentAnnotation::ow(["word", "batch"])
        );
    }

    #[test]
    fn annotate_unknown_component_errors() {
        let mut g = DataflowGraph::new("g");
        let spec = Spec::parse("Ghost:\n  annotation: { from: a, to: b, label: CR }\n").unwrap();
        assert!(spec.annotate(&mut g).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = Spec::parse(
            "# header\n\nC:\n  # inner comment\n  annotation: { from: a, to: b, label: CW }\n\n",
        )
        .unwrap();
        assert_eq!(spec.components.len(), 1);
    }

    #[test]
    fn split_top_level_respects_brackets() {
        let parts = split_top_level("a: [1, 2], b: c");
        assert_eq!(parts, vec!["a: [1, 2]", " b: c"]);
    }
}
