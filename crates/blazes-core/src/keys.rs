//! Attribute key sets.
//!
//! Streams carry named attributes (e.g. a click-log stream has `id`,
//! `campaign`, `window`). Seal keys, gate subscripts and functional-dependency
//! endpoints are all *sets* of attribute names. We use a [`BTreeSet`] so key
//! sets have a canonical order, which keeps analysis output and error
//! messages deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An ordered set of attribute names.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeySet(BTreeSet<String>);

impl KeySet {
    /// The empty key set.
    #[must_use]
    pub fn new() -> Self {
        KeySet(BTreeSet::new())
    }

    /// Build a key set from anything yielding attribute names.
    pub fn from_attrs<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        KeySet(attrs.into_iter().map(Into::into).collect())
    }

    /// A singleton key set.
    pub fn single(attr: impl Into<String>) -> Self {
        let mut s = BTreeSet::new();
        s.insert(attr.into());
        KeySet(s)
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, attr: &str) -> bool {
        self.0.contains(attr)
    }

    /// Insert an attribute; returns `true` if it was not already present.
    pub fn insert(&mut self, attr: impl Into<String>) -> bool {
        self.0.insert(attr.into())
    }

    /// Subset test: is every attribute of `self` in `other`?
    #[must_use]
    pub fn is_subset(&self, other: &KeySet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &KeySet) -> KeySet {
        KeySet(self.0.intersection(&other.0).cloned().collect())
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &KeySet) -> KeySet {
        KeySet(self.0.union(&other.0).cloned().collect())
    }

    /// Iterate attributes in canonical (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(String::as_str)
    }

    /// Apply an attribute renaming. Returns `None` if any attribute has no
    /// image under `map` — the key set does not survive the projection, which
    /// for seal propagation means the seal must be dropped.
    #[must_use]
    pub fn rename(&self, map: &std::collections::BTreeMap<String, String>) -> Option<KeySet> {
        let mut out = BTreeSet::new();
        for attr in &self.0 {
            out.insert(map.get(attr)?.clone());
        }
        Some(KeySet(out))
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for attr in &self.0 {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{attr}")?;
            first = false;
        }
        Ok(())
    }
}

impl<S: Into<String>> FromIterator<S> for KeySet {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        KeySet::from_attrs(iter)
    }
}

impl<'a> IntoIterator for &'a KeySet {
    type Item = &'a String;
    type IntoIter = std::collections::btree_set::Iter<'a, String>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn canonical_display_order() {
        let k = KeySet::from_attrs(["window", "id"]);
        assert_eq!(k.to_string(), "id,window");
    }

    #[test]
    fn duplicates_collapse() {
        let k = KeySet::from_attrs(["id", "id", "id"]);
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn subset_and_intersection() {
        let a = KeySet::from_attrs(["id"]);
        let b = KeySet::from_attrs(["id", "window"]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.intersection(&b), a);
        assert_eq!(b.union(&a), b);
    }

    #[test]
    fn rename_total_mapping() {
        let k = KeySet::from_attrs(["id", "window"]);
        let mut map = BTreeMap::new();
        map.insert("id".to_string(), "ad_id".to_string());
        map.insert("window".to_string(), "hour".to_string());
        assert_eq!(k.rename(&map), Some(KeySet::from_attrs(["ad_id", "hour"])));
    }

    #[test]
    fn rename_partial_mapping_drops() {
        let k = KeySet::from_attrs(["id", "window"]);
        let mut map = BTreeMap::new();
        map.insert("id".to_string(), "ad_id".to_string());
        assert_eq!(k.rename(&map), None);
    }

    #[test]
    fn empty_keyset_is_subset_of_all() {
        let e = KeySet::new();
        assert!(e.is_empty());
        assert!(e.is_subset(&KeySet::from_attrs(["x"])));
    }
}
