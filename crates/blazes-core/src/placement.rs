//! The strategy→placement API: turning a [`CoordinationPlan`] into a
//! runtime-facing [`CoordinationSpec`].
//!
//! [`crate::strategy`] reasons in graph ids ([`ComponentId`], derivation
//! endpoints); execution engines reason in *names* (topology nodes,
//! instance labels). A [`CoordinationSpec`] is the bridge: one directive
//! per coordinated component, keyed by component name, stating which
//! mechanism the analysis selected and where it must sit. It is pure data
//! — `blazes-autocoord` (and the Storm topology builder) consume it to
//! rewrite a running dataflow, injecting seal gates or an ordering service
//! exactly where the analysis demands and nothing anywhere else.

use crate::error::Result;
use crate::graph::DataflowGraph;
use crate::keys::KeySet;
use crate::strategy::{plan_for, CoordinationPlan, Strategy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One coordination requirement, resolved to component/interface names.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoordDirective {
    /// Run the seal protocol on `component`'s `input`: buffer each
    /// partition keyed by `key`, release on seal plus a unanimous producer
    /// vote (paper Section V-B1).
    Seal {
        /// Consuming component name.
        component: String,
        /// Sealed input interface name.
        input: String,
        /// The seal key.
        key: KeySet,
    },
    /// Deliver all of `component`'s inputs in one total order decided by an
    /// ordering service (paper Section V-B2).
    Order {
        /// Component name whose inputs must be ordered.
        component: String,
        /// The input interfaces covered by the order.
        inputs: Vec<String>,
        /// `true` for a dynamic (per-run) ordering service, `false` for a
        /// static sequence that also removes cross-run nondeterminism.
        dynamic: bool,
    },
}

impl CoordDirective {
    /// The coordinated component's name.
    #[must_use]
    pub fn component(&self) -> &str {
        match self {
            CoordDirective::Seal { component, .. } | CoordDirective::Order { component, .. } => {
                component
            }
        }
    }
}

/// A complete, name-resolved coordination spec for one dataflow: what the
/// injection pass must add, per component. An empty spec certifies the
/// dataflow confluent — the pass must leave it untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinationSpec {
    /// One directive per coordinated component, sorted by component name.
    pub directives: Vec<CoordDirective>,
}

impl CoordinationSpec {
    /// Resolve a [`CoordinationPlan`] against the graph it was synthesized
    /// for. When a component draws both an ordering and seal strategies,
    /// ordering subsumes sealing (the total order already serializes the
    /// sealed input), so only the `Order` directive is kept.
    #[must_use]
    pub fn from_plan(graph: &DataflowGraph, plan: &CoordinationPlan) -> Self {
        let mut by_component: BTreeMap<String, CoordDirective> = BTreeMap::new();
        // Seals first so a later Order directive overwrites them.
        for strat in &plan.strategies {
            if let Strategy::SealProtocol {
                component,
                input,
                key,
            } = strat
            {
                let name = graph.component(*component).name.clone();
                by_component
                    .entry(name.clone())
                    .or_insert(CoordDirective::Seal {
                        component: name,
                        input: input.clone(),
                        key: key.clone(),
                    });
            }
        }
        for strat in &plan.strategies {
            if let Strategy::Ordering {
                component,
                inputs,
                dynamic,
            } = strat
            {
                let name = graph.component(*component).name.clone();
                by_component.insert(
                    name.clone(),
                    CoordDirective::Order {
                        component: name,
                        inputs: inputs.clone(),
                        dynamic: *dynamic,
                    },
                );
            }
        }
        CoordinationSpec {
            directives: by_component.into_values().collect(),
        }
    }

    /// Analyze `graph`, synthesize the minimal plan and resolve it —
    /// the full annotate→analyze→inject front half in one call.
    pub fn derive(graph: &DataflowGraph, dynamic_ordering: bool) -> Result<Self> {
        let plan = plan_for(graph, dynamic_ordering)?;
        Ok(CoordinationSpec::from_plan(graph, &plan))
    }

    /// No coordination required anywhere?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Number of directives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// The directive applying to `component`, if any.
    #[must_use]
    pub fn directive_for(&self, component: &str) -> Option<&CoordDirective> {
        self.directives.iter().find(|d| d.component() == component)
    }

    /// Human-readable rendering for logs and reports.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if self.directives.is_empty() {
            return "confluent: no coordination to inject\n".to_string();
        }
        let mut s = String::new();
        for d in &self.directives {
            match d {
                CoordDirective::Seal {
                    component,
                    input,
                    key,
                } => {
                    let _ = writeln!(s, "inject seal-gate at {component}.{input} keyed {{{key}}}");
                }
                CoordDirective::Order {
                    component,
                    inputs,
                    dynamic,
                } => {
                    let _ = writeln!(
                        s,
                        "inject {} ordering service before {component} on [{}]",
                        if *dynamic { "dynamic" } else { "static" },
                        inputs.join(", ")
                    );
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::ComponentAnnotation as CA;

    fn wordcount(sealed: bool) -> DataflowGraph {
        let mut g = DataflowGraph::new("wordcount");
        let tweets = g.add_source("tweets", &["word", "batch"]);
        if sealed {
            g.seal_source(tweets, ["batch"]);
        }
        let splitter = g.add_component("Splitter");
        g.add_path(splitter, "tweets", "words", CA::cr());
        let count = g.add_component("Count");
        g.add_path(count, "words", "counts", CA::ow(["word", "batch"]));
        let commit = g.add_component("Commit");
        g.add_path(commit, "counts", "db", CA::cw());
        let sink = g.add_sink("store");
        g.connect_source(tweets, splitter, "tweets");
        g.connect(splitter, "words", count, "words");
        g.connect(count, "counts", commit, "counts");
        g.connect_sink(commit, "db", sink);
        g
    }

    #[test]
    fn sealed_wordcount_resolves_to_seal_directive() {
        let g = wordcount(true);
        let spec = CoordinationSpec::derive(&g, false).unwrap();
        assert_eq!(spec.len(), 1);
        match spec.directive_for("Count") {
            Some(CoordDirective::Seal { input, key, .. }) => {
                assert_eq!(input, "words");
                assert_eq!(key, &KeySet::from_attrs(["batch"]));
            }
            other => panic!("expected seal directive, got {other:?}"),
        }
    }

    #[test]
    fn unsealed_wordcount_resolves_to_order_directive() {
        let g = wordcount(false);
        let spec = CoordinationSpec::derive(&g, false).unwrap();
        assert_eq!(spec.len(), 1);
        match spec.directive_for("Count") {
            Some(CoordDirective::Order {
                inputs, dynamic, ..
            }) => {
                assert_eq!(inputs, &["words".to_string()]);
                assert!(!dynamic);
            }
            other => panic!("expected order directive, got {other:?}"),
        }
    }

    #[test]
    fn confluent_graph_resolves_empty() {
        let mut g = DataflowGraph::new("confluent");
        let s = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", CA::cw());
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let spec = CoordinationSpec::derive(&g, true).unwrap();
        assert!(spec.is_empty());
        assert!(spec.render().contains("confluent"));
    }

    #[test]
    fn ordering_subsumes_sealing_on_the_same_component() {
        let g = wordcount(true);
        let count = g.component_by_name("Count").unwrap();
        let plan = CoordinationPlan {
            strategies: vec![
                Strategy::SealProtocol {
                    component: count,
                    input: "words".to_string(),
                    key: KeySet::from_attrs(["batch"]),
                },
                Strategy::Ordering {
                    component: count,
                    inputs: vec!["words".to_string()],
                    dynamic: false,
                },
            ],
        };
        let spec = CoordinationSpec::from_plan(&g, &plan);
        assert_eq!(spec.len(), 1);
        assert!(matches!(
            spec.directive_for("Count"),
            Some(CoordDirective::Order { .. })
        ));
    }

    #[test]
    fn render_names_the_mechanisms() {
        let sealed = CoordinationSpec::derive(&wordcount(true), false).unwrap();
        assert!(sealed.render().contains("seal-gate at Count.words"));
        let ordered = CoordinationSpec::derive(&wordcount(false), false).unwrap();
        assert!(ordered.render().contains("static ordering service"));
    }
}
