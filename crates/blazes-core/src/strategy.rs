//! Coordination selection and synthesis — the paper's Section V-B.
//!
//! Blazes repairs dataflows that are not confluent by constraining message
//! delivery:
//!
//! * **Sealing** (cheap, local): when an input stream's seal key is
//!   compatible with a non-confluent component's gate, the consumer only
//!   needs to delay each partition until its seal (plus, with multiple
//!   producers per partition, a unanimous-vote round). No global service is
//!   involved.
//! * **Ordering** (expensive, global): otherwise, deliver the component's
//!   inputs in a total order decided by an ordering service (Zookeeper in
//!   the paper; the simulated sequencer of `blazes-coord` here).
//!
//! [`synthesize`] inspects an [`AnalysisOutcome`] and produces a
//! [`CoordinationPlan`]: seal protocols for every compatible sealed input it
//! recognized, and ordering for every component whose reconciliation still
//! escalated an anomaly. [`apply_plan`] rewrites the graph as if the plan
//! were deployed so the *residual* label can be verified.

use crate::analysis::{AnalysisOutcome, Analyzer};
use crate::annotation::ComponentAnnotation;
use crate::error::Result;
use crate::graph::{ComponentId, DataflowGraph, Endpoint};
use crate::inference::Rule;
use crate::keys::KeySet;
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One synthesized coordination mechanism.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Strategy {
    /// Delay processing of each partition of `input` until its seal is
    /// known: the consumer buffers per-partition input, collects the
    /// producers' seal punctuations (a unanimous vote when a partition has
    /// several producers) and only then releases the partition (paper
    /// Section V-B1).
    SealProtocol {
        /// The consuming component.
        component: ComponentId,
        /// The sealed input interface.
        input: String,
        /// The seal key.
        key: KeySet,
    },
    /// Deliver all listed inputs of `component` in a single total order
    /// decided by an ordering service (paper Section V-B2).
    Ordering {
        /// The component whose inputs must be ordered.
        component: ComponentId,
        /// The input interfaces to order (all of them: the order must cover
        /// every rendezvous).
        inputs: Vec<String>,
        /// `true` for a *dynamic* ordering service (Paxos/Zookeeper): the
        /// order is agreed per run, preventing `Inst`/`Diverge` but not
        /// `Run`. `false` for a *static* sequence (e.g. Storm transactional
        /// batch ids), which also prevents cross-run nondeterminism.
        dynamic: bool,
    },
}

/// A full coordination plan for a dataflow.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinationPlan {
    /// The synthesized strategies, deduplicated and sorted.
    pub strategies: Vec<Strategy>,
}

impl CoordinationPlan {
    /// Does the plan involve any global ordering?
    #[must_use]
    pub fn needs_ordering(&self) -> bool {
        self.strategies
            .iter()
            .any(|s| matches!(s, Strategy::Ordering { .. }))
    }

    /// Does the plan involve any seal protocol?
    #[must_use]
    pub fn needs_sealing(&self) -> bool {
        self.strategies
            .iter()
            .any(|s| matches!(s, Strategy::SealProtocol { .. }))
    }

    /// Components subject to ordering.
    #[must_use]
    pub fn ordered_components(&self) -> Vec<ComponentId> {
        self.strategies
            .iter()
            .filter_map(|s| match s {
                Strategy::Ordering { component, .. } => Some(*component),
                Strategy::SealProtocol { .. } => None,
            })
            .collect()
    }

    /// Render the plan as human-readable text.
    #[must_use]
    pub fn render(&self, graph: &DataflowGraph) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.strategies.is_empty() {
            let _ = writeln!(s, "no coordination required");
            return s;
        }
        for strat in &self.strategies {
            match strat {
                Strategy::SealProtocol {
                    component,
                    input,
                    key,
                } => {
                    let _ = writeln!(
                        s,
                        "seal-protocol at {}.{}: buffer partitions keyed {{{key}}}, release on seal + unanimous producer vote",
                        graph.component(*component).name,
                        input
                    );
                }
                Strategy::Ordering {
                    component,
                    inputs,
                    dynamic,
                } => {
                    let _ = writeln!(
                        s,
                        "{} ordering at {}: totally order delivery on [{}]",
                        if *dynamic { "dynamic" } else { "static" },
                        graph.component(*component).name,
                        inputs.join(", ")
                    );
                }
            }
        }
        s
    }
}

/// Synthesize a coordination plan from an analysis outcome.
///
/// `dynamic_ordering` selects the flavor of ordering service to synthesize
/// where sealing is unavailable (see [`Strategy::Ordering::dynamic`]).
#[must_use]
pub fn synthesize(
    graph: &DataflowGraph,
    outcome: &AnalysisOutcome,
    dynamic_ordering: bool,
) -> CoordinationPlan {
    let mut strategies: BTreeSet<Strategy> = BTreeSet::new();

    // Seal protocols: every compatible seal consumption recognized by
    // inference, plus every seal that protected an NDRead.
    for d in outcome.derivations() {
        if d.rule == Rule::SealConsume {
            if let Label::Seal(key) = &d.input {
                strategies.insert(Strategy::SealProtocol {
                    component: d.from.component,
                    input: d.from.iface.clone(),
                    key: key.clone(),
                });
            }
        }
    }
    for r in outcome.reports() {
        if r.reconciliation.protected.is_empty() {
            continue;
        }
        // The seals that protected reads arrived on sibling paths into the
        // same output interface; the consumer must still run the seal
        // protocol on those inputs (delay reads until the referenced
        // partition is sealed). The *input* label carries the seal even
        // when the path's projection drops the key from its output.
        for d in outcome.derivations() {
            if d.to == r.iface {
                if let Label::Seal(key) = &d.input {
                    strategies.insert(Strategy::SealProtocol {
                        component: d.from.component,
                        input: d.from.iface.clone(),
                        key: key.clone(),
                    });
                }
            }
        }
    }

    // Ordering: any output interface whose reconciliation escalated an
    // anomaly means seals were absent or incompatible for some path.
    for r in outcome.reports() {
        if r.reconciliation.added.is_empty() {
            continue;
        }
        let component = r.iface.component;
        let inputs: Vec<String> = graph
            .component(component)
            .input_interfaces()
            .into_iter()
            .map(str::to_string)
            .collect();
        strategies.insert(Strategy::Ordering {
            component,
            inputs,
            dynamic: dynamic_ordering,
        });
    }

    CoordinationPlan {
        strategies: strategies.into_iter().collect(),
    }
}

/// Analyze `graph` and synthesize a plan, iterating to a fixpoint.
///
/// A single pass can under-approximate: an already-`Diverge` input masks a
/// downstream component's own order-sensitivity (the Fig. 9 rules fire on
/// `Async`/`Run`/`Inst`, and `Diverge` merely propagates). We therefore
/// repair, re-analyze the repaired graph, and repeat until no new
/// strategies appear — bounded by the component count.
pub fn plan_for(graph: &DataflowGraph, dynamic_ordering: bool) -> Result<CoordinationPlan> {
    let mut strategies: BTreeSet<Strategy> = BTreeSet::new();
    let mut current = graph.clone();
    for _ in 0..=graph.components().len() {
        let outcome = Analyzer::new(&current).run()?;
        let increment = synthesize(&current, &outcome, dynamic_ordering);
        let before = strategies.len();
        strategies.extend(increment.strategies);
        if strategies.len() == before {
            break;
        }
        let plan = CoordinationPlan {
            strategies: strategies.iter().cloned().collect(),
        };
        current = apply_plan(graph, &plan);
    }
    Ok(CoordinationPlan {
        strategies: strategies.into_iter().collect(),
    })
}

/// Rewrite `graph` as if `plan` were deployed:
///
/// * ordered components become confluent (their inputs now arrive in an
///   agreed total order, so order-sensitivity is moot);
/// * sealed inputs stay as they are (the analysis already recognizes
///   compatible seals).
///
/// Returns the transformed graph. Use [`residual_labels`] to obtain the
/// post-plan sink labels (which accounts for the `Run` floor of *dynamic*
/// ordering).
#[must_use]
pub fn apply_plan(graph: &DataflowGraph, plan: &CoordinationPlan) -> DataflowGraph {
    let mut g = graph.clone();
    for strat in &plan.strategies {
        if let Strategy::Ordering { component, .. } = strat {
            let comp_name = graph.component(*component).name.clone();
            let id = g
                .component_by_name(&comp_name)
                .expect("component preserved by clone");
            // Convert order-sensitive annotations to their confluent
            // counterparts in place.
            let paths: Vec<_> = g.component(id).paths.clone();
            let mut rewritten = Vec::with_capacity(paths.len());
            for mut p in paths {
                p.annotation = match p.annotation {
                    ComponentAnnotation::OR(_) => ComponentAnnotation::CR,
                    ComponentAnnotation::OW(_) => ComponentAnnotation::CW,
                    other => other,
                };
                rewritten.push(p);
            }
            replace_paths(&mut g, id, rewritten);
        }
    }
    g
}

/// Compute the sink labels of `graph` after deploying `plan`.
///
/// Dynamic ordering still admits cross-run nondeterminism, so sinks
/// downstream of a dynamically ordered component are floored at `Run`.
pub fn residual_labels(
    graph: &DataflowGraph,
    plan: &CoordinationPlan,
) -> Result<Vec<(String, Label)>> {
    let transformed = apply_plan(graph, plan);
    let outcome = Analyzer::new(&transformed).run()?;

    // Sinks reachable from dynamically ordered components get the Run floor.
    let dynamic_roots: Vec<ComponentId> = plan
        .strategies
        .iter()
        .filter_map(|s| match s {
            Strategy::Ordering {
                component,
                dynamic: true,
                ..
            } => Some(*component),
            _ => None,
        })
        .collect();
    let tainted_sinks = reachable_sinks(&transformed, &dynamic_roots);

    let mut out = Vec::new();
    for (i, sink) in transformed.sinks().iter().enumerate() {
        let sid = crate::graph::SinkId(i);
        let mut label = outcome.sink_label(sid).cloned().unwrap_or(Label::Async);
        if tainted_sinks.contains(&sid) {
            label = label.join(Label::Run);
        }
        out.push((sink.name.clone(), label));
    }
    Ok(out)
}

fn replace_paths(g: &mut DataflowGraph, id: ComponentId, paths: Vec<crate::graph::PathSpec>) {
    // DataflowGraph has no direct path-replacement API (paths are append
    // only); rebuild the component's paths through a small local rebuild.
    // We rely on `Component` being reachable mutably via internal access.
    g.replace_component_paths(id, paths);
}

fn reachable_sinks(g: &DataflowGraph, roots: &[ComponentId]) -> BTreeSet<crate::graph::SinkId> {
    let mut seen: BTreeSet<ComponentId> = roots.iter().copied().collect();
    let mut frontier: Vec<ComponentId> = roots.to_vec();
    let mut sinks = BTreeSet::new();
    while let Some(c) = frontier.pop() {
        for stream in g.streams() {
            if let Endpoint::Component(from, _) = &stream.from {
                if *from != c {
                    continue;
                }
                match &stream.to {
                    Endpoint::Component(to, _) => {
                        if seen.insert(*to) {
                            frontier.push(*to);
                        }
                    }
                    Endpoint::Sink(s) => {
                        sinks.insert(*s);
                    }
                    Endpoint::Source(_) => {}
                }
            }
        }
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::ComponentAnnotation as CA;

    fn wordcount(sealed: bool) -> DataflowGraph {
        let mut g = DataflowGraph::new("wordcount");
        let tweets = g.add_source("tweets", &["word", "batch"]);
        if sealed {
            g.seal_source(tweets, ["batch"]);
        }
        let splitter = g.add_component("Splitter");
        g.add_path(splitter, "tweets", "words", CA::cr());
        let count = g.add_component("Count");
        g.add_path(count, "words", "counts", CA::ow(["word", "batch"]));
        let commit = g.add_component("Commit");
        g.add_path(commit, "counts", "db", CA::cw());
        let sink = g.add_sink("store");
        g.connect_source(tweets, splitter, "tweets");
        g.connect(splitter, "words", count, "words");
        g.connect(count, "counts", commit, "counts");
        g.connect_sink(commit, "db", sink);
        g
    }

    #[test]
    fn unsealed_wordcount_needs_ordering() {
        let g = wordcount(false);
        let plan = plan_for(&g, false).unwrap();
        assert!(plan.needs_ordering());
        assert!(!plan.needs_sealing());
        let count = g.component_by_name("Count").unwrap();
        assert!(plan.ordered_components().contains(&count));
    }

    #[test]
    fn sealed_wordcount_needs_only_seal_protocol() {
        let g = wordcount(true);
        let plan = plan_for(&g, false).unwrap();
        assert!(!plan.needs_ordering());
        assert!(plan.needs_sealing());
        let count = g.component_by_name("Count").unwrap();
        assert!(plan.strategies.iter().any(|s| matches!(
            s,
            Strategy::SealProtocol { component, input, key }
                if *component == count && input == "words" && key == &KeySet::from_attrs(["batch"])
        )));
    }

    #[test]
    fn ordering_plan_restores_consistency() {
        let g = wordcount(false);
        // Static ordering (Storm transactional topologies): Async residual.
        let plan = plan_for(&g, false).unwrap();
        let residual = residual_labels(&g, &plan).unwrap();
        assert_eq!(residual, vec![("store".to_string(), Label::Async)]);
    }

    #[test]
    fn dynamic_ordering_leaves_run_floor() {
        let g = wordcount(false);
        let plan = plan_for(&g, true).unwrap();
        let residual = residual_labels(&g, &plan).unwrap();
        assert_eq!(residual, vec![("store".to_string(), Label::Run)]);
    }

    #[test]
    fn sealed_plan_residual_is_async() {
        let g = wordcount(true);
        let plan = plan_for(&g, true).unwrap();
        let residual = residual_labels(&g, &plan).unwrap();
        assert_eq!(residual, vec![("store".to_string(), Label::Async)]);
    }

    #[test]
    fn confluent_dataflow_needs_nothing() {
        let mut g = DataflowGraph::new("confluent");
        let s = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", CA::cw());
        let k = g.add_sink("k");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let plan = plan_for(&g, true).unwrap();
        assert!(plan.strategies.is_empty());
        assert!(plan.render(&g).contains("no coordination required"));
    }

    #[test]
    fn plan_renders_human_readable() {
        let g = wordcount(true);
        let plan = plan_for(&g, false).unwrap();
        let text = plan.render(&g);
        assert!(text.contains("seal-protocol at Count.words"), "{text}");
        assert!(text.contains("{batch}"), "{text}");
    }

    #[test]
    fn apply_plan_converts_annotations() {
        let g = wordcount(false);
        let plan = plan_for(&g, false).unwrap();
        let t = apply_plan(&g, &plan);
        let count = t.component_by_name("Count").unwrap();
        assert!(t
            .component(count)
            .paths
            .iter()
            .all(|p| p.annotation == CA::cw()));
    }
}
