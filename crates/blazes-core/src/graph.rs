//! Logical dataflow graphs — the paper's Section II system model.
//!
//! A [`DataflowGraph`] is the *logical* dataflow: components with named input
//! and output interfaces, connected by streams. Sources model stream
//! producers outside the analyzed service (e.g. the tweet spout or the ad
//! servers' click logs); sinks model consumers of the service's outputs.
//!
//! Components carry one [`ComponentAnnotation`] per internal path from an
//! input interface to an output interface; streams optionally carry
//! [`StreamAnnotation`]s. The graph also owns the [`FdStore`] of declared
//! injective functional dependencies used to decide seal compatibility.

use crate::annotation::{ComponentAnnotation, StreamAnnotation};
use crate::error::{BlazesError, Result};
use crate::fd::FdStore;
use crate::keys::KeySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a component in a [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

/// Identifier of an external stream source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub usize);

/// Identifier of an external sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SinkId(pub usize);

/// Identifier of a stream (edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub usize);

/// One annotated path through a component, from input interface `from` to
/// output interface `to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSpec {
    /// Input interface name.
    pub from: String,
    /// Output interface name.
    pub to: String,
    /// The C.O.W.R. annotation for this path.
    pub annotation: ComponentAnnotation,
    /// Injective attribute mapping from input attributes to output
    /// attributes, used to chase seal keys through the path. `None` means the
    /// identity mapping (attributes keep their names) — the common case.
    pub lineage: Option<BTreeMap<String, String>>,
}

impl PathSpec {
    /// Chase a seal key through this path: the image of `key` under the
    /// path's injective attribute mapping, or `None` if some attribute has
    /// no image (the seal does not survive).
    #[must_use]
    pub fn map_seal_key(&self, key: &KeySet) -> Option<KeySet> {
        match &self.lineage {
            None => Some(key.clone()),
            Some(map) => key.rename(map),
        }
    }
}

/// A logical component (paper Section II-A): a unit of computation and
/// storage with named input/output interfaces and annotated internal paths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Human-readable name (unique within the graph).
    pub name: String,
    /// Whether the component is replicated (`Rep: true` in the spec file):
    /// multiple instances consume the same logical input streams.
    pub rep: bool,
    /// Annotated input→output paths.
    pub paths: Vec<PathSpec>,
}

impl Component {
    /// All input interface names, in declaration order, deduplicated.
    #[must_use]
    pub fn input_interfaces(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.paths {
            if !seen.contains(&p.from.as_str()) {
                seen.push(p.from.as_str());
            }
        }
        seen
    }

    /// All output interface names, in declaration order, deduplicated.
    #[must_use]
    pub fn output_interfaces(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.paths {
            if !seen.contains(&p.to.as_str()) {
                seen.push(p.to.as_str());
            }
        }
        seen
    }

    /// Paths arriving at output interface `out`.
    pub fn paths_to<'a>(&'a self, out: &str) -> impl Iterator<Item = &'a PathSpec> + 'a {
        let out = out.to_string();
        self.paths.iter().filter(move |p| p.to == out)
    }
}

/// An external stream source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Source {
    /// Name (unique within the graph).
    pub name: String,
    /// Attribute names of the records the source emits.
    pub attrs: KeySet,
    /// Stream annotation (seal/rep) for the emitted stream.
    pub annotation: StreamAnnotation,
}

/// An external sink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sink {
    /// Name (unique within the graph).
    pub name: String,
}

/// One end of a stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// An external source (producing end only).
    Source(SourceId),
    /// A component interface: `(component, interface name)`.
    Component(ComponentId, String),
    /// An external sink (consuming end only).
    Sink(SinkId),
}

/// A stream: an edge between a producing endpoint and a consuming endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stream {
    /// Producing end.
    pub from: Endpoint,
    /// Consuming end.
    pub to: Endpoint,
    /// Extra annotation on this particular stream. For source-emitted
    /// streams the source's annotation applies as well; a seal declared here
    /// on an intermediate stream records a programmer promise of
    /// punctuations.
    pub annotation: StreamAnnotation,
}

/// A logical dataflow graph plus its functional-dependency store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// Graph name, used in reports.
    pub name: String,
    components: Vec<Component>,
    sources: Vec<Source>,
    sinks: Vec<Sink>,
    streams: Vec<Stream>,
    fd_store: FdStore,
}

impl DataflowGraph {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        DataflowGraph {
            name: name.into(),
            ..DataflowGraph::default()
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Add a component with no paths yet.
    pub fn add_component(&mut self, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Component {
            name: name.into(),
            rep: false,
            paths: Vec::new(),
        });
        id
    }

    /// Add an annotated path through `component` from input interface `from`
    /// to output interface `to`.
    pub fn add_path(
        &mut self,
        component: ComponentId,
        from: impl Into<String>,
        to: impl Into<String>,
        annotation: ComponentAnnotation,
    ) {
        self.components[component.0].paths.push(PathSpec {
            from: from.into(),
            to: to.into(),
            annotation,
            lineage: None,
        });
    }

    /// Like [`add_path`](Self::add_path) with an explicit injective attribute
    /// lineage (input attribute → output attribute).
    pub fn add_path_with_lineage(
        &mut self,
        component: ComponentId,
        from: impl Into<String>,
        to: impl Into<String>,
        annotation: ComponentAnnotation,
        lineage: BTreeMap<String, String>,
    ) {
        self.components[component.0].paths.push(PathSpec {
            from: from.into(),
            to: to.into(),
            annotation,
            lineage: Some(lineage),
        });
    }

    /// Mark a component replicated (`Rep: true`).
    pub fn set_rep(&mut self, component: ComponentId, rep: bool) {
        self.components[component.0].rep = rep;
    }

    /// Replace every path of a component (used by plan application, which
    /// rewrites order-sensitive annotations once ordering is deployed).
    pub fn replace_component_paths(&mut self, component: ComponentId, paths: Vec<PathSpec>) {
        self.components[component.0].paths = paths;
    }

    /// Add an external source emitting records with attributes `attrs`.
    pub fn add_source(&mut self, name: impl Into<String>, attrs: &[&str]) -> SourceId {
        let id = SourceId(self.sources.len());
        self.sources.push(Source {
            name: name.into(),
            attrs: KeySet::from_attrs(attrs.iter().copied()),
            annotation: StreamAnnotation::none(),
        });
        id
    }

    /// Declare that `source` emits punctuations sealing partitions keyed on
    /// `key`.
    pub fn seal_source<I, S>(&mut self, source: SourceId, key: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sources[source.0].annotation.seal = Some(KeySet::from_attrs(key));
    }

    /// Remove any seal annotation from `source`.
    pub fn unseal_source(&mut self, source: SourceId) {
        self.sources[source.0].annotation.seal = None;
    }

    /// Mark a source stream as replicated.
    pub fn set_source_rep(&mut self, source: SourceId, rep: bool) {
        self.sources[source.0].annotation.rep = rep;
    }

    /// Add an external sink.
    pub fn add_sink(&mut self, name: impl Into<String>) -> SinkId {
        let id = SinkId(self.sinks.len());
        self.sinks.push(Sink { name: name.into() });
        id
    }

    /// Connect a source to a component input interface.
    pub fn connect_source(
        &mut self,
        source: SourceId,
        component: ComponentId,
        input: impl Into<String>,
    ) -> StreamId {
        self.push_stream(Stream {
            from: Endpoint::Source(source),
            to: Endpoint::Component(component, input.into()),
            annotation: StreamAnnotation::none(),
        })
    }

    /// Connect an output interface of one component to an input interface of
    /// another (or the same — a self-edge, as in the paper's `Cache`).
    pub fn connect(
        &mut self,
        from: ComponentId,
        output: impl Into<String>,
        to: ComponentId,
        input: impl Into<String>,
    ) -> StreamId {
        self.push_stream(Stream {
            from: Endpoint::Component(from, output.into()),
            to: Endpoint::Component(to, input.into()),
            annotation: StreamAnnotation::none(),
        })
    }

    /// Connect a component output interface to a sink.
    pub fn connect_sink(
        &mut self,
        from: ComponentId,
        output: impl Into<String>,
        sink: SinkId,
    ) -> StreamId {
        self.push_stream(Stream {
            from: Endpoint::Component(from, output.into()),
            to: Endpoint::Sink(sink),
            annotation: StreamAnnotation::none(),
        })
    }

    /// Set the extra annotation on an existing stream.
    pub fn annotate_stream(&mut self, stream: StreamId, annotation: StreamAnnotation) {
        self.streams[stream.0].annotation = annotation;
    }

    fn push_stream(&mut self, stream: Stream) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(stream);
        id
    }

    /// Mutable access to the injective-FD store.
    pub fn fd_store_mut(&mut self) -> &mut FdStore {
        &mut self.fd_store
    }

    /// Shared access to the injective-FD store.
    #[must_use]
    pub fn fd_store(&self) -> &FdStore {
        &self.fd_store
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// All components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All sources.
    #[must_use]
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// All sinks.
    #[must_use]
    pub fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// All streams.
    #[must_use]
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// The component with the given id.
    #[must_use]
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.0]
    }

    /// The source with the given id.
    #[must_use]
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id.0]
    }

    /// The sink with the given id.
    #[must_use]
    pub fn sink(&self, id: SinkId) -> &Sink {
        &self.sinks[id.0]
    }

    /// The stream with the given id.
    #[must_use]
    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.0]
    }

    /// Find a component by name.
    pub fn component_by_name(&self, name: &str) -> Result<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(ComponentId)
            .ok_or_else(|| BlazesError::UnknownEntity {
                kind: "component",
                name: name.to_string(),
            })
    }

    /// Find a source by name.
    pub fn source_by_name(&self, name: &str) -> Result<SourceId> {
        self.sources
            .iter()
            .position(|s| s.name == name)
            .map(SourceId)
            .ok_or_else(|| BlazesError::UnknownEntity {
                kind: "source",
                name: name.to_string(),
            })
    }

    /// Find a sink by name.
    pub fn sink_by_name(&self, name: &str) -> Result<SinkId> {
        self.sinks
            .iter()
            .position(|s| s.name == name)
            .map(SinkId)
            .ok_or_else(|| BlazesError::UnknownEntity {
                kind: "sink",
                name: name.to_string(),
            })
    }

    /// Streams consumed by a given component input interface.
    pub fn streams_into<'a>(
        &'a self,
        component: ComponentId,
        input: &str,
    ) -> impl Iterator<Item = (StreamId, &'a Stream)> + 'a {
        let input = input.to_string();
        self.streams
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match &s.to {
                Endpoint::Component(c, iface) if *c == component && *iface == input => {
                    Some((StreamId(i), s))
                }
                _ => None,
            })
    }

    /// Streams produced by a given component output interface.
    pub fn streams_out_of<'a>(
        &'a self,
        component: ComponentId,
        output: &str,
    ) -> impl Iterator<Item = (StreamId, &'a Stream)> + 'a {
        let output = output.to_string();
        self.streams
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match &s.from {
                Endpoint::Component(c, iface) if *c == component && *iface == output => {
                    Some((StreamId(i), s))
                }
                _ => None,
            })
    }

    /// Streams arriving at a sink.
    pub fn streams_into_sink(&self, sink: SinkId) -> impl Iterator<Item = (StreamId, &Stream)> {
        self.streams
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match &s.to {
                Endpoint::Sink(k) if *k == sink => Some((StreamId(i), s)),
                _ => None,
            })
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Structural validation: interface references resolve, names are
    /// unique, every source feeds something, every declared seal key is a
    /// subset of the source's attributes.
    pub fn validate(&self) -> Result<()> {
        let mut names = std::collections::BTreeSet::new();
        for c in &self.components {
            if !names.insert(c.name.clone()) {
                return Err(BlazesError::Duplicate {
                    kind: "component",
                    name: c.name.clone(),
                });
            }
            if c.paths.is_empty() {
                return Err(BlazesError::MalformedGraph(format!(
                    "component {:?} has no annotated paths",
                    c.name
                )));
            }
        }
        for s in &self.sources {
            if !names.insert(s.name.clone()) {
                return Err(BlazesError::Duplicate {
                    kind: "source",
                    name: s.name.clone(),
                });
            }
            if let Some(seal) = &s.annotation.seal {
                if !seal.is_subset(&s.attrs) {
                    return Err(BlazesError::MalformedGraph(format!(
                        "source {:?} sealed on {{{seal}}}, not a subset of its attributes {{{}}}",
                        s.name, s.attrs
                    )));
                }
            }
            let feeds_any = self.streams.iter().any(
                |st| matches!(&st.from, Endpoint::Source(id) if self.sources[id.0].name == s.name),
            );
            if !feeds_any {
                return Err(BlazesError::MalformedGraph(format!(
                    "source {:?} feeds no component",
                    s.name
                )));
            }
        }
        for s in &self.sinks {
            if !names.insert(s.name.clone()) {
                return Err(BlazesError::Duplicate {
                    kind: "sink",
                    name: s.name.clone(),
                });
            }
        }
        for stream in &self.streams {
            self.validate_endpoint(&stream.from, /*producing=*/ true)?;
            self.validate_endpoint(&stream.to, /*producing=*/ false)?;
        }
        Ok(())
    }

    fn validate_endpoint(&self, ep: &Endpoint, producing: bool) -> Result<()> {
        match ep {
            Endpoint::Source(id) => {
                if !producing {
                    return Err(BlazesError::MalformedGraph(
                        "a source cannot consume a stream".to_string(),
                    ));
                }
                if id.0 >= self.sources.len() {
                    return Err(BlazesError::UnknownEntity {
                        kind: "source",
                        name: format!("#{}", id.0),
                    });
                }
            }
            Endpoint::Sink(id) => {
                if producing {
                    return Err(BlazesError::MalformedGraph(
                        "a sink cannot produce a stream".to_string(),
                    ));
                }
                if id.0 >= self.sinks.len() {
                    return Err(BlazesError::UnknownEntity {
                        kind: "sink",
                        name: format!("#{}", id.0),
                    });
                }
            }
            Endpoint::Component(id, iface) => {
                if id.0 >= self.components.len() {
                    return Err(BlazesError::UnknownEntity {
                        kind: "component",
                        name: format!("#{}", id.0),
                    });
                }
                let c = &self.components[id.0];
                let known = if producing {
                    c.output_interfaces().contains(&iface.as_str())
                } else {
                    c.input_interfaces().contains(&iface.as_str())
                };
                if !known {
                    return Err(BlazesError::UnknownEntity {
                        kind: if producing {
                            "output interface"
                        } else {
                            "input interface"
                        },
                        name: format!("{}.{}", c.name, iface),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::ComponentAnnotation as CA;

    fn wordcount() -> (
        DataflowGraph,
        SourceId,
        ComponentId,
        ComponentId,
        ComponentId,
        SinkId,
    ) {
        let mut g = DataflowGraph::new("wordcount");
        let tweets = g.add_source("tweets", &["word", "batch"]);
        let splitter = g.add_component("Splitter");
        g.add_path(splitter, "tweets", "words", CA::cr());
        let count = g.add_component("Count");
        g.add_path(count, "words", "counts", CA::ow(["word", "batch"]));
        let commit = g.add_component("Commit");
        g.add_path(commit, "counts", "db", CA::cw());
        let sink = g.add_sink("store");
        g.connect_source(tweets, splitter, "tweets");
        g.connect(splitter, "words", count, "words");
        g.connect(count, "counts", commit, "counts");
        g.connect_sink(commit, "db", sink);
        (g, tweets, splitter, count, commit, sink)
    }

    #[test]
    fn build_and_validate_wordcount() {
        let (g, ..) = wordcount();
        g.validate().unwrap();
        assert_eq!(g.components().len(), 3);
        assert_eq!(g.streams().len(), 4);
    }

    #[test]
    fn interfaces_are_discovered_from_paths() {
        let (g, _, splitter, ..) = wordcount();
        let c = g.component(splitter);
        assert_eq!(c.input_interfaces(), vec!["tweets"]);
        assert_eq!(c.output_interfaces(), vec!["words"]);
    }

    #[test]
    fn lookup_by_name() {
        let (g, ..) = wordcount();
        assert!(g.component_by_name("Count").is_ok());
        assert!(g.component_by_name("Missing").is_err());
        assert!(g.source_by_name("tweets").is_ok());
        assert!(g.sink_by_name("store").is_ok());
    }

    #[test]
    fn seal_must_be_subset_of_source_attrs() {
        let (mut g, tweets, ..) = wordcount();
        g.seal_source(tweets, ["batch"]);
        g.validate().unwrap();
        g.seal_source(tweets, ["campaign"]);
        assert!(matches!(g.validate(), Err(BlazesError::MalformedGraph(_))));
    }

    #[test]
    fn duplicate_component_names_rejected() {
        let mut g = DataflowGraph::new("dup");
        let a = g.add_component("X");
        g.add_path(a, "i", "o", CA::cr());
        let b = g.add_component("X");
        g.add_path(b, "i", "o", CA::cr());
        assert!(matches!(g.validate(), Err(BlazesError::Duplicate { .. })));
    }

    #[test]
    fn dangling_source_rejected() {
        let mut g = DataflowGraph::new("dangling");
        g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "i", "o", CA::cr());
        assert!(matches!(g.validate(), Err(BlazesError::MalformedGraph(_))));
    }

    #[test]
    fn unknown_interface_rejected() {
        let mut g = DataflowGraph::new("bad-iface");
        let s = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", CA::cr());
        g.connect_source(s, c, "not-an-input");
        assert!(matches!(
            g.validate(),
            Err(BlazesError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn component_with_no_paths_rejected() {
        let mut g = DataflowGraph::new("no-paths");
        let s = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.connect_source(s, c, "in");
        assert!(matches!(g.validate(), Err(BlazesError::MalformedGraph(_))));
    }

    #[test]
    fn streams_into_and_out_of() {
        let (g, _, splitter, count, ..) = wordcount();
        let into: Vec<_> = g.streams_into(count, "words").collect();
        assert_eq!(into.len(), 1);
        let out: Vec<_> = g.streams_out_of(splitter, "words").collect();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn seal_key_chase_through_identity_lineage() {
        let p = PathSpec {
            from: "in".into(),
            to: "out".into(),
            annotation: CA::cr(),
            lineage: None,
        };
        let key = KeySet::from_attrs(["batch"]);
        assert_eq!(p.map_seal_key(&key), Some(key.clone()));
    }

    #[test]
    fn seal_key_chase_through_renaming_lineage() {
        let mut lineage = BTreeMap::new();
        lineage.insert("batch".to_string(), "epoch".to_string());
        let p = PathSpec {
            from: "in".into(),
            to: "out".into(),
            annotation: CA::cr(),
            lineage: Some(lineage),
        };
        assert_eq!(
            p.map_seal_key(&KeySet::from_attrs(["batch"])),
            Some(KeySet::from_attrs(["epoch"]))
        );
        // An attribute projected away kills the seal.
        assert_eq!(p.map_seal_key(&KeySet::from_attrs(["word"])), None);
    }

    #[test]
    fn self_edge_allowed() {
        let mut g = DataflowGraph::new("cache");
        let s = g.add_source("resp", &["k"]);
        let cache = g.add_component("Cache");
        g.add_path(cache, "response", "response", CA::cw());
        g.connect_source(s, cache, "response");
        g.connect(cache, "response", cache, "response");
        g.validate().unwrap();
    }
}
