//! The end-to-end Blazes analysis (paper Section V-A).
//!
//! The [`Analyzer`] walks the condensed dataflow in topological order. For
//! every output interface of every node it:
//!
//! 1. runs the **inference** step ([`crate::inference::infer_path`]) once per
//!    (inbound stream label × component path), producing the `Labels` list;
//! 2. runs the **reconciliation** procedure
//!    ([`crate::reconcile::reconcile`]), which escalates `Taint` and
//!    unprotected `NDRead` labels to `Run`/`Inst`/`Diverge`;
//! 3. **merges** to a single output label (highest severity, internal labels
//!    stripped) and publishes it on all outgoing streams.
//!
//! The resulting [`AnalysisOutcome`] records the label of every stream,
//! interface and sink, along with the full derivation history used to render
//! the paper-style proof trees ([`crate::derivation`]).

use crate::error::{BlazesError, Result};
use crate::graph::{ComponentId, DataflowGraph, Endpoint, PathSpec, SinkId, StreamId};
use crate::inference::{infer_path, Rule};
use crate::label::Label;
use crate::paths::{condense, Condensation, IfaceNode, InterfaceRef};
use crate::reconcile::{reconcile, Derived, Reconciliation};
use std::collections::BTreeMap;

/// One inference-step record: an input label rewritten through a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDerivation {
    /// Name of the (possibly collapsed) node.
    pub node: String,
    /// Consuming interface of the path.
    pub from: InterfaceRef,
    /// Producing interface of the path.
    pub to: InterfaceRef,
    /// The annotation on the path, rendered (e.g. `OW_{batch,word}`).
    pub annotation: String,
    /// Input stream label.
    pub input: Label,
    /// Derived label.
    pub derived: Label,
    /// Rule that fired.
    pub rule: Rule,
}

/// The reconciliation record for one output interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceReport {
    /// Node name.
    pub node: String,
    /// Whether the node is replicated.
    pub rep: bool,
    /// The output interface.
    pub iface: InterfaceRef,
    /// Full reconciliation detail.
    pub reconciliation: Reconciliation,
}

/// The result of analyzing a dataflow graph.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    graph_name: String,
    stream_labels: Vec<Label>,
    interface_labels: BTreeMap<InterfaceRef, Label>,
    sink_labels: BTreeMap<SinkId, Label>,
    derivations: Vec<PathDerivation>,
    reports: Vec<InterfaceReport>,
    warnings: Vec<String>,
}

impl AnalysisOutcome {
    /// The analyzed graph's name.
    #[must_use]
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Label assigned to a stream.
    #[must_use]
    pub fn stream_label(&self, id: StreamId) -> &Label {
        &self.stream_labels[id.0]
    }

    /// Label of a component output interface, if it was derived.
    #[must_use]
    pub fn interface_label(&self, component: ComponentId, iface: &str) -> Option<&Label> {
        self.interface_labels.get(&InterfaceRef {
            component,
            iface: iface.to_string(),
        })
    }

    /// Merged label of all streams arriving at a sink.
    #[must_use]
    pub fn sink_label(&self, sink: SinkId) -> Option<&Label> {
        self.sink_labels.get(&sink)
    }

    /// All sink labels.
    #[must_use]
    pub fn sink_labels(&self) -> &BTreeMap<SinkId, Label> {
        &self.sink_labels
    }

    /// All interface labels.
    #[must_use]
    pub fn interface_labels(&self) -> &BTreeMap<InterfaceRef, Label> {
        &self.interface_labels
    }

    /// Every inference step, in processing order.
    #[must_use]
    pub fn derivations(&self) -> &[PathDerivation] {
        &self.derivations
    }

    /// Every reconciliation, in processing order.
    #[must_use]
    pub fn reports(&self) -> &[InterfaceReport] {
        &self.reports
    }

    /// Warnings (e.g. unfed input interfaces).
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The most severe label among all sinks (the "program label").
    #[must_use]
    pub fn program_label(&self) -> Label {
        self.sink_labels
            .values()
            .fold(Label::Async, |acc, l| acc.join(l.clone()))
    }

    /// Does any sink exhibit an anomaly (`Run` or worse), i.e. does the
    /// program require coordination for consistent outcomes?
    #[must_use]
    pub fn requires_coordination(&self) -> bool {
        self.program_label().is_anomalous()
    }

    /// Interfaces whose merged label is anomalous, most severe first — the
    /// candidate locations for coordination placement.
    #[must_use]
    pub fn anomalous_interfaces(&self) -> Vec<(&InterfaceRef, &Label)> {
        let mut v: Vec<_> = self
            .interface_labels
            .iter()
            .filter(|(_, l)| l.is_anomalous())
            .collect();
        v.sort_by(|a, b| b.1.severity().cmp(&a.1.severity()).then(a.0.cmp(b.0)));
        v
    }
}

/// The Blazes analyzer: borrows a graph, produces an [`AnalysisOutcome`].
#[derive(Debug)]
pub struct Analyzer<'g> {
    graph: &'g DataflowGraph,
}

impl<'g> Analyzer<'g> {
    /// Create an analyzer for `graph`.
    #[must_use]
    pub fn new(graph: &'g DataflowGraph) -> Self {
        Analyzer { graph }
    }

    /// Run the full analysis.
    pub fn run(&self) -> Result<AnalysisOutcome> {
        self.graph.validate()?;
        let cond = condense(self.graph);
        let mut out = AnalysisOutcome {
            graph_name: self.graph.name.clone(),
            stream_labels: vec![Label::Async; self.graph.streams().len()],
            interface_labels: BTreeMap::new(),
            sink_labels: BTreeMap::new(),
            derivations: Vec::new(),
            reports: Vec::new(),
            warnings: Vec::new(),
        };
        let mut labeled = vec![false; self.graph.streams().len()];

        // Source streams get their initial labels.
        for (i, stream) in self.graph.streams().iter().enumerate() {
            if let Endpoint::Source(sid) = &stream.from {
                let src = self.graph.source(*sid);
                let seal = stream
                    .annotation
                    .seal
                    .as_ref()
                    .or(src.annotation.seal.as_ref());
                out.stream_labels[i] = match seal {
                    Some(key) => Label::Seal(key.clone()),
                    None => Label::Async,
                };
                labeled[i] = true;
            }
        }

        // Process interface SCCs in topological order.
        for &si in &cond.topo {
            self.process_scc(&cond, si, &mut out, &mut labeled)?;
        }

        // Sinks: merge arriving stream labels.
        for (sid, _) in self.graph.sinks().iter().enumerate() {
            let sink = SinkId(sid);
            let mut label: Option<Label> = None;
            for (stream_id, _) in self.graph.streams_into_sink(sink) {
                if !labeled[stream_id.0] {
                    return Err(BlazesError::Analysis(format!(
                        "stream #{} into sink {:?} was never labeled",
                        stream_id.0,
                        self.graph.sink(sink).name
                    )));
                }
                let l = out.stream_labels[stream_id.0].clone();
                label = Some(match label {
                    None => l,
                    Some(cur) => cur.join(l),
                });
            }
            match label {
                Some(l) => {
                    out.sink_labels.insert(sink, l);
                }
                None => out.warnings.push(format!(
                    "sink {:?} receives no streams",
                    self.graph.sink(sink).name
                )),
            }
        }

        Ok(out)
    }

    fn process_scc(
        &self,
        cond: &Condensation,
        si: usize,
        out: &mut AnalysisOutcome,
        labeled: &mut [bool],
    ) -> Result<()> {
        let scc = &cond.sccs[si];
        if scc.collapsed {
            return self.process_collapsed(cond, si, out, labeled);
        }
        // Trivial SCC: only Out nodes need work.
        let IfaceNode::Out(oref) = &scc.nodes[0] else {
            return Ok(());
        };
        let comp = self.graph.component(oref.component);
        let mut derived_labels: Vec<Derived> = Vec::new();
        for path in comp.paths_to(&oref.iface) {
            let from_ref = InterfaceRef {
                component: oref.component,
                iface: path.from.clone(),
            };
            let mut fed = false;
            for (stream_id, _) in self.graph.streams_into(oref.component, &path.from) {
                fed = true;
                if !labeled[stream_id.0] {
                    return Err(BlazesError::Analysis(format!(
                        "stream into {}.{} not labeled before use (topological order bug)",
                        comp.name, path.from
                    )));
                }
                let input = out.stream_labels[stream_id.0].clone();
                let (derived, rule) = infer_path(&input, path, self.graph.fd_store());
                let input_seal = match &input {
                    Label::Seal(k) => Some(k.clone()),
                    _ => None,
                };
                out.derivations.push(PathDerivation {
                    node: scc.name.clone(),
                    from: from_ref.clone(),
                    to: oref.clone(),
                    annotation: path.annotation.to_string(),
                    input: input.clone(),
                    derived: derived.clone(),
                    rule,
                });
                derived_labels.push(Derived {
                    label: derived,
                    input_seal,
                });
                // A Run input's *content* nondeterminism survives an
                // order-sensitive read: the NDRead models the racing reads,
                // but no seal can protect contents that differ across runs
                // (a Run stream is never punctuated). Keep the Run label in
                // the entry list so protection cannot mask it.
                if input == Label::Run && rule == Rule::R1 {
                    derived_labels.push(Derived {
                        label: Label::Run,
                        input_seal: None,
                    });
                }
            }
            if !fed {
                out.warnings.push(format!(
                    "input interface {}.{} is not fed by any stream",
                    comp.name, path.from
                ));
            }
        }
        self.finish_interface(
            scc.name.clone(),
            scc.rep,
            oref.clone(),
            derived_labels,
            out,
            labeled,
        );
        Ok(())
    }

    /// Process a collapsed cycle: every path arriving at an Out node of the
    /// cycle is analyzed with the cycle's most severe annotation and an
    /// empty lineage (seals are dropped), over the streams entering the
    /// cycle from outside. The merged label is published on every stream
    /// leaving the cycle.
    fn process_collapsed(
        &self,
        cond: &Condensation,
        si: usize,
        out: &mut AnalysisOutcome,
        labeled: &mut [bool],
    ) -> Result<()> {
        let scc = &cond.sccs[si];
        let annotation = scc
            .collapsed_annotation
            .clone()
            .expect("collapsed SCC carries an annotation");
        let mut derived_labels: Vec<Derived> = Vec::new();
        let out_refs: Vec<InterfaceRef> = scc
            .nodes
            .iter()
            .filter_map(|n| match n {
                IfaceNode::Out(r) => Some(r.clone()),
                IfaceNode::In(_) => None,
            })
            .collect();

        for oref in &out_refs {
            let comp = self.graph.component(oref.component);
            for path in comp.paths_to(&oref.iface) {
                let from_ref = InterfaceRef {
                    component: oref.component,
                    iface: path.from.clone(),
                };
                // Synthesize the collapsed path: cycle annotation, empty
                // lineage so chased seals are dropped.
                let collapsed_spec = PathSpec {
                    from: path.from.clone(),
                    to: path.to.clone(),
                    annotation: annotation.clone(),
                    lineage: Some(BTreeMap::new()),
                };
                for (stream_id, stream) in self.graph.streams_into(oref.component, &path.from) {
                    // Skip intra-cycle streams: collapsed away.
                    if let Endpoint::Component(pc, piface) = &stream.from {
                        let producer = IfaceNode::Out(InterfaceRef {
                            component: *pc,
                            iface: piface.clone(),
                        });
                        if cond.scc_of.get(&producer) == Some(&si) {
                            continue;
                        }
                    }
                    if !labeled[stream_id.0] {
                        return Err(BlazesError::Analysis(format!(
                            "stream into cycle {} not labeled before use",
                            scc.name
                        )));
                    }
                    let input = out.stream_labels[stream_id.0].clone();
                    let (derived, rule) =
                        infer_path(&input, &collapsed_spec, self.graph.fd_store());
                    let input_seal = match &input {
                        Label::Seal(k) => Some(k.clone()),
                        _ => None,
                    };
                    out.derivations.push(PathDerivation {
                        node: scc.name.clone(),
                        from: from_ref.clone(),
                        to: oref.clone(),
                        annotation: annotation.to_string(),
                        input: input.clone(),
                        derived: derived.clone(),
                        rule,
                    });
                    derived_labels.push(Derived {
                        label: derived,
                        input_seal,
                    });
                    if input == Label::Run && rule == Rule::R1 {
                        derived_labels.push(Derived {
                            label: Label::Run,
                            input_seal: None,
                        });
                    }
                }
            }
        }

        let rec = reconcile(derived_labels, scc.rep, self.graph.fd_store());
        let merged = rec.merged.clone();
        for oref in &out_refs {
            out.reports.push(InterfaceReport {
                node: scc.name.clone(),
                rep: scc.rep,
                iface: oref.clone(),
                reconciliation: rec.clone(),
            });
            out.interface_labels.insert(oref.clone(), merged.clone());
            for (stream_id, stream) in self.graph.streams_out_of(oref.component, &oref.iface) {
                let mut label = merged.clone();
                if let Some(key) = &stream.annotation.seal {
                    if label.severity() <= crate::severity::Severity::ASYNC {
                        label = Label::Seal(key.clone());
                    }
                }
                out.stream_labels[stream_id.0] = label;
                labeled[stream_id.0] = true;
            }
        }
        Ok(())
    }

    /// Reconcile, record and publish the merged label of one trivial output
    /// interface.
    fn finish_interface(
        &self,
        node_name: String,
        rep: bool,
        oref: InterfaceRef,
        derived_labels: Vec<Derived>,
        out: &mut AnalysisOutcome,
        labeled: &mut [bool],
    ) {
        let rec = reconcile(derived_labels, rep, self.graph.fd_store());
        let merged = rec.merged.clone();
        out.reports.push(InterfaceReport {
            node: node_name,
            rep,
            iface: oref.clone(),
            reconciliation: rec,
        });
        out.interface_labels.insert(oref.clone(), merged.clone());
        for (stream_id, stream) in self.graph.streams_out_of(oref.component, &oref.iface) {
            let mut label = merged.clone();
            if let Some(key) = &stream.annotation.seal {
                if label.severity() <= crate::severity::Severity::ASYNC {
                    label = Label::Seal(key.clone());
                }
            }
            out.stream_labels[stream_id.0] = label;
            labeled[stream_id.0] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::{ComponentAnnotation as CA, StreamAnnotation};
    use crate::graph::SourceId;

    /// Build the Storm wordcount dataflow of Section VI-A.
    fn wordcount(sealed: bool) -> (DataflowGraph, SinkId) {
        let mut g = DataflowGraph::new("wordcount");
        let tweets = g.add_source("tweets", &["word", "batch"]);
        if sealed {
            g.seal_source(tweets, ["batch"]);
        }
        let splitter = g.add_component("Splitter");
        g.add_path(splitter, "tweets", "words", CA::cr());
        let count = g.add_component("Count");
        g.add_path(count, "words", "counts", CA::ow(["word", "batch"]));
        let commit = g.add_component("Commit");
        g.add_path(commit, "counts", "db", CA::cw());
        let sink = g.add_sink("store");
        g.connect_source(tweets, splitter, "tweets");
        g.connect(splitter, "words", count, "words");
        g.connect(count, "counts", commit, "counts");
        g.connect_sink(commit, "db", sink);
        (g, sink)
    }

    /// Build the ad-reporting dataflow of Section VI-B with the given query
    /// annotation on the Report request path.
    fn ad_network(query: CA, seal: Option<&[&str]>) -> (DataflowGraph, SinkId, SourceId) {
        let mut g = DataflowGraph::new("ad-report");
        let clicks = g.add_source("clicks", &["id", "campaign", "window"]);
        if let Some(key) = seal {
            g.seal_source(clicks, key.iter().copied());
        }
        let requests = g.add_source("requests", &["id", "campaign", "window"]);

        let report = g.add_component("Report");
        g.set_rep(report, true);
        g.add_path(report, "click", "response", CA::cw());
        g.add_path(report, "request", "response", query);

        let cache = g.add_component("Cache");
        g.set_rep(cache, true);
        g.add_path(cache, "request", "response", CA::cr());
        g.add_path(cache, "response", "response", CA::cw());
        g.add_path(cache, "request", "request", CA::cr());

        let analyst = g.add_sink("analyst");
        g.connect_source(clicks, report, "click");
        g.connect_source(requests, cache, "request");
        g.connect(cache, "request", report, "request");
        g.connect(report, "response", cache, "response");
        g.connect(cache, "response", cache, "response"); // cache gossip
        g.connect_sink(cache, "response", analyst);
        (g, analyst, clicks)
    }

    #[test]
    fn wordcount_unsealed_is_run() {
        // Section VI-A2: without seals the topology label is Run.
        let (g, sink) = wordcount(false);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Run));
        assert!(out.requires_coordination());
    }

    #[test]
    fn wordcount_sealed_on_batch_is_async() {
        // Section VI-A2: sealing on batch makes the topology Async.
        let (g, sink) = wordcount(true);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
        assert!(!out.requires_coordination());
    }

    #[test]
    fn wordcount_sealed_on_word_also_async() {
        // Count is OW_{word,batch}: a seal on `word` is compatible too.
        let (mut g, sink) = wordcount(false);
        let tweets = g.source_by_name("tweets").unwrap();
        g.seal_source(tweets, ["word"]);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn thresh_is_async_without_coordination() {
        // Section VI-B2: THRESH is confluent end to end.
        let (g, sink, _) = ad_network(CA::cr(), None);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
        assert!(!out.requires_coordination());
    }

    #[test]
    fn poor_diverges_without_coordination() {
        // Section VI-B2: POOR taints the replicated cache -> Diverge.
        let (g, sink, _) = ad_network(CA::or(["id"]), None);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Diverge));
    }

    #[test]
    fn poor_sealed_on_campaign_still_diverges() {
        // Sealing on campaign does not help POOR (gate is {id}).
        let (g, sink, _) = ad_network(CA::or(["id"]), Some(&["campaign"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Diverge));
    }

    #[test]
    fn campaign_sealed_on_campaign_is_async() {
        // Section VI-B2: CAMPAIGN + Seal_campaign reduces to Async.
        let (g, sink, _) = ad_network(CA::or(["id", "campaign"]), Some(&["campaign"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
        assert!(!out.requires_coordination());
    }

    #[test]
    fn window_sealed_on_window_is_async() {
        let (g, sink, _) = ad_network(CA::or(["id", "window"]), Some(&["window"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn campaign_unsealed_diverges() {
        // Without the seal the nonmonotonic CAMPAIGN query behaves like POOR.
        let (g, sink, _) = ad_network(CA::or(["id", "campaign"]), None);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Diverge));
    }

    #[test]
    fn report_interface_labels_match_paper() {
        // In POOR, Report's response interface is Inst (cross-instance ND).
        let (g, _, _) = ad_network(CA::or(["id"]), None);
        let report = g.component_by_name("Report").unwrap();
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.interface_label(report, "response"), Some(&Label::Inst));
    }

    #[test]
    fn non_replicated_report_gives_run_not_inst() {
        let (mut g, _, _) = ad_network(CA::or(["id"]), None);
        let report = g.component_by_name("Report").unwrap();
        g.set_rep(report, false);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.interface_label(report, "response"), Some(&Label::Run));
    }

    #[test]
    fn derivations_are_recorded() {
        let (g, _) = wordcount(false);
        let out = Analyzer::new(&g).run().unwrap();
        // Splitter, Count, Commit each derive at least one label.
        assert!(out.derivations().len() >= 3);
        assert!(out
            .derivations()
            .iter()
            .any(|d| d.node == "Count" && d.derived == Label::Taint));
    }

    #[test]
    fn stream_seal_annotation_upgrades_label() {
        // An intermediate stream with a declared seal is labeled Seal.
        let (mut g, _) = wordcount(false);
        let splitter = g.component_by_name("Splitter").unwrap();
        let count = g.component_by_name("Count").unwrap();
        let sid = g.connect(splitter, "words", count, "words");
        g.annotate_stream(sid, StreamAnnotation::sealed(["batch"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.stream_label(sid), &Label::seal(["batch"]));
    }

    #[test]
    fn program_label_is_max_over_sinks() {
        let (g, _) = wordcount(false);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.program_label(), Label::Run);
    }

    #[test]
    fn anomalous_interfaces_sorted_by_severity() {
        let (g, _, _) = ad_network(CA::or(["id"]), None);
        let out = Analyzer::new(&g).run().unwrap();
        let anomalous = out.anomalous_interfaces();
        assert!(!anomalous.is_empty());
        for w in anomalous.windows(2) {
            assert!(w[0].1.severity() >= w[1].1.severity());
        }
    }

    #[test]
    fn unfed_interface_warns_but_completes() {
        let mut g = DataflowGraph::new("unfed");
        let s = g.add_source("src", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", CA::cr());
        g.add_path(c, "other", "out", CA::cr()); // never connected
        let k = g.add_sink("sink");
        g.connect_source(s, c, "in");
        g.connect_sink(c, "out", k);
        let out = Analyzer::new(&g).run().unwrap();
        assert!(!out.warnings().is_empty());
        assert_eq!(out.sink_label(k), Some(&Label::Async));
    }
}
