//! Rendering of analysis derivations in the paper's Section V-A4 notation.
//!
//! The paper writes label derivations as proof trees:
//!
//! ```text
//! Async  OW_{word,batch}
//! ---------------------- (2)
//!        Taint
//! Count  ⇒  Run
//! ```
//!
//! We render a linearized form, one line per inference step, grouped by
//! node, followed by the reconciliation summary for each output interface.

use crate::analysis::AnalysisOutcome;
use crate::graph::DataflowGraph;
use std::fmt::Write as _;

/// Render every inference step and reconciliation of `outcome` as a
/// plain-text report.
#[must_use]
pub fn render(graph: &DataflowGraph, outcome: &AnalysisOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Blazes analysis: {} ==", outcome.graph_name());

    let mut current_node: Option<&str> = None;
    for d in outcome.derivations() {
        if current_node != Some(d.node.as_str()) {
            let _ = writeln!(s, "\n[{}]", d.node);
            current_node = Some(d.node.as_str());
        }
        let _ = writeln!(
            s,
            "  {}  {}  {}  {}   [{} -> {}]",
            d.input, d.annotation, d.rule, d.derived, d.from.iface, d.to.iface,
        );
    }

    let _ = writeln!(s, "\n-- reconciliation --");
    for r in outcome.reports() {
        let comp = graph.component(r.iface.component);
        let added = if r.reconciliation.added.is_empty() {
            String::from("-")
        } else {
            r.reconciliation
                .added
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            s,
            "  {}.{} (node {}{}) added: {added}  =>  {}",
            comp.name,
            r.iface.iface,
            r.node,
            if r.rep { ", Rep" } else { "" },
            r.reconciliation.merged,
        );
    }

    let _ = writeln!(s, "\n-- sinks --");
    for (sink, label) in outcome.sink_labels() {
        let _ = writeln!(s, "  {}  =>  {}", graph.sink(*sink).name, label);
    }
    if !outcome.warnings().is_empty() {
        let _ = writeln!(s, "\n-- warnings --");
        for w in outcome.warnings() {
            let _ = writeln!(s, "  {w}");
        }
    }
    s
}

/// Render a compact one-line-per-sink summary, e.g. for CLI tools.
#[must_use]
pub fn render_summary(graph: &DataflowGraph, outcome: &AnalysisOutcome) -> String {
    let mut s = String::new();
    for (sink, label) in outcome.sink_labels() {
        let verdict = if label.is_anomalous() {
            "coordination REQUIRED"
        } else {
            "consistent without coordination"
        };
        let _ = writeln!(
            s,
            "{}: {} => {} ({verdict})",
            outcome.graph_name(),
            graph.sink(*sink).name,
            label
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::annotation::ComponentAnnotation as CA;
    use crate::graph::DataflowGraph;

    fn graph() -> DataflowGraph {
        let mut g = DataflowGraph::new("demo");
        let src = g.add_source("tweets", &["word", "batch"]);
        let count = g.add_component("Count");
        g.add_path(count, "words", "counts", CA::ow(["word", "batch"]));
        let sink = g.add_sink("store");
        g.connect_source(src, count, "words");
        g.connect_sink(count, "counts", sink);
        g
    }

    #[test]
    fn render_includes_rule_applications() {
        let g = graph();
        let out = Analyzer::new(&g).run().unwrap();
        let text = render(&g, &out);
        assert!(text.contains("OW_{batch,word}"), "annotation shown: {text}");
        assert!(text.contains("(2)"), "rule 2 shown: {text}");
        assert!(text.contains("Taint"), "internal label shown: {text}");
        assert!(text.contains("store  =>  Run"), "sink label shown: {text}");
    }

    #[test]
    fn summary_includes_verdict() {
        let g = graph();
        let out = Analyzer::new(&g).run().unwrap();
        let text = render_summary(&g, &out);
        assert!(text.contains("coordination REQUIRED"));
    }

    #[test]
    fn summary_for_consistent_graph() {
        let mut g = DataflowGraph::new("ok");
        let src = g.add_source("s", &["a"]);
        let c = g.add_component("C");
        g.add_path(c, "in", "out", CA::cr());
        let sink = g.add_sink("k");
        g.connect_source(src, c, "in");
        g.connect_sink(c, "out", sink);
        let out = Analyzer::new(&g).run().unwrap();
        let text = render_summary(&g, &out);
        assert!(text.contains("consistent without coordination"));
    }
}
