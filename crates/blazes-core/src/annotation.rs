//! Component and stream annotations — the paper's Section IV-A.
//!
//! A *component annotation* describes one path from an input interface to an
//! output interface using the C.O.W.R. taxonomy of Fig. 7: the path is either
//! **C**onfluent or **O**rder-sensitive, and either a **W**rite path (its
//! inputs modify component state) or a **R**ead-only path.
//!
//! Order-sensitive annotations carry a *gate*: the set of attributes that
//! partitions the inputs the non-confluent logic ranges over. A stream sealed
//! on a key compatible with the gate lets Blazes replace global ordering with
//! per-partition sealing.
//!
//! A *stream annotation* describes an input stream: `Seal_key` promises
//! punctuations on `key`, and `Rep` marks a replicated stream.

use crate::keys::KeySet;
use crate::severity::Severity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The partition subscript of an order-sensitive annotation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// `OR_gate` / `OW_gate` with an explicit attribute set.
    Keys(KeySet),
    /// `OR_*` / `OW_*`: "each record belongs to a different partition" — the
    /// finest partitioning (the full record), which any seal on the stream's
    /// own attributes refines (paper Section IV-A1).
    Wildcard,
}

impl Gate {
    /// Build a gate from attribute names.
    pub fn keys<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Gate::Keys(KeySet::from_attrs(attrs))
    }

    /// The explicit attribute set, if any.
    #[must_use]
    pub fn as_keys(&self) -> Option<&KeySet> {
        match self {
            Gate::Keys(k) => Some(k),
            Gate::Wildcard => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Keys(k) => write!(f, "{k}"),
            Gate::Wildcard => write!(f, "*"),
        }
    }
}

/// A C.O.W.R. component-path annotation (paper Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentAnnotation {
    /// Confluent, read-only (severity 1). Example: the wordcount `Splitter`.
    CR,
    /// Confluent, stateful write path (severity 2). Example: an append-only
    /// log or the wordcount `Commit` store.
    CW,
    /// Order-sensitive, read-only, over partitions `gate` (severity 3).
    /// Example: the `WINDOW` query path, `OR_{id,window}`.
    OR(Gate),
    /// Order-sensitive write path over partitions `gate` (severity 4).
    /// Example: the wordcount `Count`, `OW_{word,batch}`.
    OW(Gate),
}

impl ComponentAnnotation {
    /// Confluent read-only path.
    #[must_use]
    pub fn cr() -> Self {
        ComponentAnnotation::CR
    }

    /// Confluent write path.
    #[must_use]
    pub fn cw() -> Self {
        ComponentAnnotation::CW
    }

    /// Order-sensitive read path with an explicit gate.
    pub fn or<I, S>(gate: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ComponentAnnotation::OR(Gate::keys(gate))
    }

    /// Order-sensitive write path with an explicit gate.
    pub fn ow<I, S>(gate: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ComponentAnnotation::OW(Gate::keys(gate))
    }

    /// `OR_*`: order-sensitive read path, unknown partitions.
    #[must_use]
    pub fn or_star() -> Self {
        ComponentAnnotation::OR(Gate::Wildcard)
    }

    /// `OW_*`: order-sensitive write path, unknown partitions.
    #[must_use]
    pub fn ow_star() -> Self {
        ComponentAnnotation::OW(Gate::Wildcard)
    }

    /// Is the path confluent (produces the same output *set* for every input
    /// order)?
    #[must_use]
    pub fn is_confluent(&self) -> bool {
        matches!(self, ComponentAnnotation::CR | ComponentAnnotation::CW)
    }

    /// Does the path modify component state?
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, ComponentAnnotation::CW | ComponentAnnotation::OW(_))
    }

    /// The gate of an order-sensitive annotation.
    #[must_use]
    pub fn gate(&self) -> Option<&Gate> {
        match self {
            ComponentAnnotation::OR(g) | ComponentAnnotation::OW(g) => Some(g),
            _ => None,
        }
    }

    /// Severity per the paper's Fig. 7 (1 = CR … 4 = OW). Used when
    /// collapsing cycles: the collapsed node takes the member annotation of
    /// highest severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            ComponentAnnotation::CR => Severity(1),
            ComponentAnnotation::CW => Severity(2),
            ComponentAnnotation::OR(_) => Severity(3),
            ComponentAnnotation::OW(_) => Severity(4),
        }
    }
}

impl fmt::Display for ComponentAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentAnnotation::CR => write!(f, "CR"),
            ComponentAnnotation::CW => write!(f, "CW"),
            ComponentAnnotation::OR(g) => write!(f, "OR_{{{g}}}"),
            ComponentAnnotation::OW(g) => write!(f, "OW_{{{g}}}"),
        }
    }
}

/// Annotations attached to a stream (paper Section IV-A2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamAnnotation {
    /// `Seal_key`: the stream is punctuated on `key`, with at least one
    /// punctuation covering every record.
    pub seal: Option<KeySet>,
    /// `Rep`: the stream is replicated — the same contents are delivered to
    /// more than one consumer instance.
    pub rep: bool,
}

impl StreamAnnotation {
    /// No annotations: an ordinary asynchronous stream.
    #[must_use]
    pub fn none() -> Self {
        StreamAnnotation::default()
    }

    /// A stream sealed on `key`.
    pub fn sealed<I, S>(key: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        StreamAnnotation {
            seal: Some(KeySet::from_attrs(key)),
            rep: false,
        }
    }

    /// Mark the stream replicated.
    #[must_use]
    pub fn replicated(mut self) -> Self {
        self.rep = true;
        self
    }
}

impl fmt::Display for StreamAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.seal, self.rep) {
            (Some(k), true) => write!(f, "Seal_{{{k}}},Rep"),
            (Some(k), false) => write!(f, "Seal_{{{k}}}"),
            (None, true) => write!(f, "Rep"),
            (None, false) => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cowr_severity_ordering() {
        // Fig. 7: CR < CW < OR < OW.
        assert!(ComponentAnnotation::cr().severity() < ComponentAnnotation::cw().severity());
        assert!(ComponentAnnotation::cw().severity() < ComponentAnnotation::or(["x"]).severity());
        assert!(
            ComponentAnnotation::or(["x"]).severity() < ComponentAnnotation::ow(["x"]).severity()
        );
    }

    #[test]
    fn confluence_and_statefulness() {
        assert!(ComponentAnnotation::cr().is_confluent());
        assert!(ComponentAnnotation::cw().is_confluent());
        assert!(!ComponentAnnotation::or(["a"]).is_confluent());
        assert!(!ComponentAnnotation::ow_star().is_confluent());

        assert!(!ComponentAnnotation::cr().is_write());
        assert!(ComponentAnnotation::cw().is_write());
        assert!(!ComponentAnnotation::or(["a"]).is_write());
        assert!(ComponentAnnotation::ow(["a"]).is_write());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ComponentAnnotation::cr().to_string(), "CR");
        assert_eq!(
            ComponentAnnotation::ow(["word", "batch"]).to_string(),
            "OW_{batch,word}"
        );
        assert_eq!(ComponentAnnotation::or_star().to_string(), "OR_{*}");
    }

    #[test]
    fn stream_annotation_display() {
        assert_eq!(StreamAnnotation::none().to_string(), "-");
        assert_eq!(
            StreamAnnotation::sealed(["campaign"]).to_string(),
            "Seal_{campaign}"
        );
        assert_eq!(
            StreamAnnotation::sealed(["campaign"])
                .replicated()
                .to_string(),
            "Seal_{campaign},Rep"
        );
    }

    #[test]
    fn gate_accessors() {
        let g = Gate::keys(["id", "window"]);
        assert_eq!(g.as_keys().unwrap().len(), 2);
        assert!(Gate::Wildcard.as_keys().is_none());
        let ann = ComponentAnnotation::ow(["id"]);
        assert!(ann.gate().is_some());
        assert!(ComponentAnnotation::cw().gate().is_none());
    }
}
