//! Run statistics and time-series recording.
//!
//! The paper's Figures 12–14 plot "log records processed over time"; the
//! [`TimeSeries`] recorder captures exactly that shape from inside sink
//! components.

use crate::sim::Time;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Statistics for one instance after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStats {
    /// Component name.
    pub name: String,
    /// Messages processed.
    pub processed: u64,
    /// Last processing-completion time.
    pub busy_until: Time,
}

/// Per-worker scheduling statistics of one parallel run. These expose the
/// skew-awareness of the work-stealing scheduler: differential tests can
/// assert not only that backends agree on outputs, but that load actually
/// balanced (and that static sharding did not).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Events (deliveries + ticks) this worker processed.
    pub events: u64,
    /// Instance activations (mailbox drain sessions) this worker ran.
    pub activations: u64,
    /// Tasks obtained by stealing from a sibling worker's deque.
    pub steals: u64,
    /// Tasks obtained from the global injector.
    pub injector_pops: u64,
    /// Tasks this worker spilled from its local deque to the injector
    /// because the local queue exceeded the spill threshold.
    pub spills: u64,
    /// Times this worker parked idle on the eventcount (announce →
    /// re-check → park all passed; excludes cancelled announcements).
    pub parks: u64,
    /// Times one of this worker's sends actually signaled a parked (or
    /// parking) peer — i.e. the eventcount notify took its slow path.
    pub wakeups: u64,
    /// Mailbox tail-CAS retries across this worker's sends: the honest
    /// producer-contention signal of the lock-free MPSC mailboxes (0 on
    /// an uncontended wire; grows as concurrent producers collide on one
    /// destination).
    pub push_retries: u64,
    /// Times a bounded send parked waiting for mailbox space.
    pub backpressure_parks: u64,
    /// Bounded sends that overshot the capacity rather than park, because
    /// parking would have left no runnable worker (the no-deadlock escape).
    pub overflow_sends: u64,
    /// Total time parked waiting for mailbox space.
    pub backpressure_park_time: Duration,
    /// Total time parked idle, waiting for runnable instances.
    pub idle_park_time: Duration,
    /// High-water mark of this worker's local run-queue length.
    pub max_local_queue: usize,
    /// Time-warp speculation sessions entered by instances this worker
    /// activated (one state snapshot each).
    pub speculations: u64,
    /// Snapshot restores after an aborted speculation epoch.
    pub rollbacks: u64,
    /// Committed events re-processed after a rollback — the deterministic
    /// replay half of time-warp.
    pub replayed_events: u64,
    /// Speculative deliveries deferred instead of processed (component
    /// not checkpointable, or already tainted by a different epoch).
    pub deferred_deliveries: u64,
    /// Speculative deliveries dropped because their epoch aborted before
    /// they were processed.
    pub discarded_deliveries: u64,
}

/// Skew summary over per-worker event counts: `max / mean`, where `1.0`
/// means perfectly balanced. Returns `0.0` when no events were processed.
#[must_use]
pub fn event_balance(workers: &[WorkerStats]) -> f64 {
    if workers.is_empty() {
        return 0.0;
    }
    let max = workers.iter().map(|w| w.events).max().unwrap_or(0);
    let total: u64 = workers.iter().map(|w| w.events).sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / workers.len() as f64;
    max as f64 / mean
}

/// Aggregate statistics for a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Virtual time of the last processed event.
    pub end_time: Time,
    /// Total events processed (deliveries + ticks).
    pub events_processed: u64,
    /// Messages delivered to instances.
    pub messages_delivered: u64,
    /// Channel-level duplicate deliveries.
    pub duplicates: u64,
    /// Channel-level retransmissions.
    pub retransmits: u64,
    /// Per-instance breakdown.
    pub per_instance: Vec<InstanceStats>,
}

impl RunStats {
    /// Publish this snapshot into a metrics registry under `sim.*` names.
    ///
    /// Everything is exported as gauges (levels, not increments), so a
    /// paused-and-resumed simulation that exports after each `run()` call
    /// stays idempotent: the registry always holds the latest totals.
    pub fn export_metrics(&self, reg: &blazes_obs::Registry) {
        reg.gauge("sim.end_time_us").set(self.end_time as i64);
        reg.gauge("sim.events").set(self.events_processed as i64);
        reg.gauge("sim.deliveries")
            .set(self.messages_delivered as i64);
        reg.gauge("sim.duplicates").set(self.duplicates as i64);
        reg.gauge("sim.retransmits").set(self.retransmits as i64);
        reg.gauge("sim.instances")
            .set(self.per_instance.len() as i64);
    }

    /// Throughput in messages per virtual second over the whole run.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.messages_delivered as f64 / (self.end_time as f64 / 1_000_000.0)
    }
}

/// A shared, thread-safe `(time, cumulative count)` recorder.
///
/// Cloning shares the underlying buffer, so a sink component can hold one
/// clone while the test harness holds another.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Arc<Mutex<Vec<(Time, u64)>>>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Record that the cumulative count reached `count` at time `t`.
    pub fn record(&self, t: Time, count: u64) {
        self.points.lock().push((t, count));
    }

    /// Record a single increment: count = previous + 1.
    pub fn increment(&self, t: Time) {
        let mut points = self.points.lock();
        let next = points.last().map_or(1, |&(_, c)| c + 1);
        points.push((t, next));
    }

    /// Snapshot of all points.
    #[must_use]
    pub fn points(&self) -> Vec<(Time, u64)> {
        self.points.lock().clone()
    }

    /// Number of points recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.lock().len()
    }

    /// Is the series empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.lock().is_empty()
    }

    /// The final cumulative count.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.points.lock().last().map_or(0, |&(_, c)| c)
    }

    /// Drop every point after the first `len` (time-warp rollback: a
    /// speculative consumer truncates back to its checkpoint length).
    pub fn truncate(&self, len: usize) {
        self.points.lock().truncate(len);
    }

    /// Time at which the cumulative count first reached `target`, if ever.
    #[must_use]
    pub fn time_to_reach(&self, target: u64) -> Option<Time> {
        self.points
            .lock()
            .iter()
            .find(|&&(_, c)| c >= target)
            .map(|&(t, _)| t)
    }

    /// Downsample to at most `buckets` evenly spaced (by time) points for
    /// plotting; always keeps the last point.
    #[must_use]
    pub fn downsample(&self, buckets: usize) -> Vec<(Time, u64)> {
        let points = self.points.lock();
        if points.len() <= buckets || buckets == 0 {
            return points.clone();
        }
        let start = points.first().map_or(0, |&(t, _)| t);
        let end = points.last().map_or(0, |&(t, _)| t);
        let span = (end - start).max(1);
        let mut out = Vec::with_capacity(buckets + 1);
        let mut next_bucket = 0usize;
        for &(t, c) in points.iter() {
            let bucket = ((t - start) as u128 * buckets as u128 / span as u128) as usize;
            if bucket >= next_bucket {
                out.push((t, c));
                next_bucket = bucket + 1;
            }
        }
        if out.last() != points.last() {
            out.push(*points.last().expect("non-empty"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_accumulates() {
        let ts = TimeSeries::new();
        ts.increment(10);
        ts.increment(20);
        ts.increment(30);
        assert_eq!(ts.total(), 3);
        assert_eq!(ts.points(), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn time_to_reach() {
        let ts = TimeSeries::new();
        for t in 1..=10u64 {
            ts.increment(t * 100);
        }
        assert_eq!(ts.time_to_reach(5), Some(500));
        assert_eq!(ts.time_to_reach(11), None);
    }

    #[test]
    fn clones_share_storage() {
        let a = TimeSeries::new();
        let b = a.clone();
        a.increment(1);
        b.increment(2);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let ts = TimeSeries::new();
        for t in 0..1000u64 {
            ts.increment(t);
        }
        let d = ts.downsample(10);
        assert!(d.len() <= 12, "got {}", d.len());
        assert_eq!(d.last().copied(), Some((999, 1000)));
    }

    #[test]
    fn downsample_small_series_is_identity() {
        let ts = TimeSeries::new();
        ts.increment(5);
        assert_eq!(ts.downsample(10), vec![(5, 1)]);
    }

    #[test]
    fn event_balance_summarizes_skew() {
        let mk = |worker, events| WorkerStats {
            worker,
            events,
            ..WorkerStats::default()
        };
        assert_eq!(event_balance(&[]), 0.0);
        assert_eq!(event_balance(&[mk(0, 0), mk(1, 0)]), 0.0);
        let even = event_balance(&[mk(0, 50), mk(1, 50)]);
        assert!((even - 1.0).abs() < 1e-12);
        let skewed = event_balance(&[mk(0, 90), mk(1, 10)]);
        assert!((skewed - 1.8).abs() < 1e-12);
    }

    #[test]
    fn throughput_computation() {
        let stats = RunStats {
            end_time: 2_000_000,
            events_processed: 10,
            messages_delivered: 100,
            duplicates: 0,
            retransmits: 0,
            per_instance: vec![],
        };
        assert!((stats.throughput_per_sec() - 50.0).abs() < 1e-9);
    }
}
