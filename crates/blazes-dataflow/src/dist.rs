//! The distributed multi-process backend: a topology partitioned across
//! OS processes over a real byte boundary.
//!
//! Where [`crate::par`] runs a topology on threads inside one address
//! space, this backend forks *worker processes* and ships each one its
//! partition of the graph. Inside every worker the lock-free parallel
//! runtime does the actual execution; what this module adds is the
//! boundary between them — Unix-domain sockets carrying length-prefixed
//! frames ([`wire`]) — and a coordinator (the *parent*) that routes every
//! cross-partition message.
//!
//! # SPMD assembly
//!
//! There is no plan serializer for arbitrary component graphs (components
//! are closures over arbitrary state). Instead, topologies are *named*:
//! a [`Registry`] maps a topology name to a deterministic assembly
//! function `fn(&mut dyn ExecutorBuilder, params) -> sinks`. The parent
//! ships each worker a tiny framed plan — name, parameter string, seed,
//! process count, its own index — and every process (parent included)
//! runs the *identical* assembly. Because assembly is deterministic, all
//! processes agree on the global numbering of instances, channels and
//! wires without ever serializing a component. Instance `i` is *owned* by
//! process `i % processes`; a worker materializes only its own instances
//! (through [`DistWorkerBuilder`], which translates global ids to local
//! [`crate::par::ParBuilder`] ids), while the parent assembles into a
//! [`ProbeBuilder`] that records pure structure.
//!
//! Coordination injection composes untouched: `blazes-autocoord`'s
//! rewrite pass runs *inside* the assembly function, below the
//! [`ExecutorBuilder`] surface, so the rewritten graph — gates and all —
//! is what gets numbered and partitioned, identically everywhere.
//!
//! # Routing and fault injection on the wire
//!
//! Workers connect only to the parent (a star). A wire whose producer and
//! consumer are owned by the same process stays entirely local — the par
//! runtime delivers it, fault RNG and all. A *cross* wire is split: the
//! producer is wired to an egress shim that forwards
//! `(wire, seq, message)` to the parent, the parent applies the wire's
//! fault schedule and routes the frame to the consumer's owner, and the
//! consumer's owner injects it through [`crate::par::RunningPar::inject`].
//!
//! Fault injection therefore moves to the actual byte boundary, but the
//! *schedule* is unchanged: the parent seeds one RNG per cross wire with
//! the exact formula and per-send draw order the par backend uses for
//! local wires. A wire's loss/duplication schedule is a function of its
//! global wire number and send ordinal only — identical whether the wire
//! happens to be local or cross, which is what makes digests reproducible
//! across `{1,2,4}` processes and against the single-process backends.
//! Two extra fault classes exist only at frame granularity (so they
//! perturb timing, never per-wire FIFO): probabilistic *reordering* of
//! frames on different wires, and counter-scheduled *partition windows*
//! that buffer traffic and release it in arrival order.
//!
//! # Termination and collection
//!
//! A worker reports `Idle{sent, recv}` whenever its local runtime has
//! quiesced ([`crate::par::RunningPar::settled`]) and its egress queue
//! has drained. The parent declares stability when every worker's latest
//! report matches the parent's own per-worker frame counters and no
//! frames are held in the reorder/partition buffers — any frame still in
//! flight in either direction makes some counter pair disagree. A
//! `Probe`/`ProbeAck` confirmation round then re-validates before the
//! parent collects: `Collect` makes each worker finish its run (running
//! the end-of-run speculation rescue, if any) and stream back the
//! contents of every sink it owns plus its run statistics.
//!
//! One documented divergence from the single-process backends: egress
//! traffic produced *by* the end-of-run rescue drain (a never-sealed
//! speculative session re-emitting blocking output after `Collect`) can
//! no longer cross the wire; such frames are dropped and counted in
//! [`DistStats::late_egress_frames`]. Coordinated topologies whose seals
//! all arrive — everything the differential suite runs — never hit this.

pub mod wire;

use crate::backend::{ChannelId, ExecutorBuilder, PortId};
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::par::ParBuilder;
use crate::sim::{InstanceId, Time};
use crate::sinks::CollectorSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use wire::{Frame, FrameDecoder};

/// Environment variable carrying the parent's socket path to a worker.
pub const ENV_PARENT: &str = "BLAZES_DIST_PARENT";
/// Environment variable carrying a worker's process index.
pub const ENV_INDEX: &str = "BLAZES_DIST_INDEX";

/// Wire numbers for the local producer→egress hops, far above any global
/// wire number. Egress hops use [`ChannelConfig::instant`] (no fault
/// RNG), so the offset only keeps diagnostics unambiguous.
const EGRESS_WIRE_BASE: u64 = 1 << 48;

/// Mixing constant for the *reorder* RNG stream of a cross wire —
/// deliberately different from the loss/duplication stream's constant so
/// enabling reordering never perturbs the at-least-once schedule.
const REORDER_MIX: u64 = 0xd1b5_4a32_d192_ed03;

/// Which process owns global instance `instance` in an
/// `processes`-process run.
#[must_use]
pub fn owner(instance: usize, processes: usize) -> usize {
    instance % processes
}

/// One cross-partition emission leaving a worker: `(wire, seq, message)`.
pub type EgressFrame = (u64, u64, Message);

/// Sinks returned by a registered assembly, with the *global* instance id
/// each sink was added as (ownership of the results follows from it).
pub type SinkSet = Vec<(InstanceId, CollectorSink)>;

/// A deterministic topology assembly: given any backend builder and a
/// parameter string, build the graph and return its sinks. Must be a pure
/// function of the parameter string — every process replays it.
pub type AssembleFn = Box<dyn Fn(&mut dyn ExecutorBuilder, &str) -> SinkSet + Send + Sync>;

/// Named topologies the distributed backend can instantiate. The parent
/// ships only a name + parameter string; both sides must hold the same
/// registry.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, AssembleFn>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `assemble` under `name` (replacing any previous entry).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        assemble: impl Fn(&mut dyn ExecutorBuilder, &str) -> SinkSet + Send + Sync + 'static,
    ) {
        self.entries.insert(name.into(), Box::new(assemble));
    }

    /// Run the assembly registered under `topology` against `builder`.
    ///
    /// # Errors
    /// [`DistError::UnknownTopology`] if nothing is registered under
    /// `topology`.
    pub fn assemble(
        &self,
        topology: &str,
        params: &str,
        builder: &mut dyn ExecutorBuilder,
    ) -> Result<SinkSet, DistError> {
        let f = self
            .entries
            .get(topology)
            .ok_or_else(|| DistError::UnknownTopology(topology.to_string()))?;
        Ok(f(builder, params))
    }

    /// Registered topology names.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }
}

/// Everything a distributed run needs to know, parent side.
#[derive(Debug, Clone)]
pub struct DistSpec {
    /// Registered topology name.
    pub topology: String,
    /// Parameter string handed to the assembly function verbatim.
    pub params: String,
    /// Fault/run seed, shared by every process.
    pub seed: u64,
    /// Worker process count.
    pub processes: usize,
    /// Par-runtime worker threads per process.
    pub workers_per_process: usize,
    /// Scheduler of the in-process runtime (`false` = static sharding).
    pub stealing: bool,
    /// Enable time-warp speculation inside each process.
    pub speculation: bool,
    /// Per cross-wire probability that a frame is held and delivered
    /// after the next frame bound for the same process (frames of the
    /// *same* wire are never swapped — per-wire FIFO is load-bearing).
    pub reorder_prob: f64,
    /// Counter-scheduled partition: every `every` routed frames, buffer
    /// the next `len` frames and release them in arrival order.
    pub partition: Option<(u64, u64)>,
    /// Worker process argv. The command re-enters this program (or any
    /// program holding the same registry) such that it reaches
    /// [`worker_main`]; see [`libtest_worker_command`] for test binaries.
    pub worker_command: Vec<String>,
}

impl DistSpec {
    /// A spec with library defaults: 2 processes × 2 workers, stealing
    /// scheduler, no speculation, no frame-level faults.
    #[must_use]
    pub fn new(
        topology: impl Into<String>,
        params: impl Into<String>,
        worker_command: Vec<String>,
    ) -> Self {
        DistSpec {
            topology: topology.into(),
            params: params.into(),
            seed: 0,
            processes: 2,
            workers_per_process: 2,
            stealing: true,
            speculation: false,
            reorder_prob: 0.0,
            partition: None,
            worker_command,
        }
    }
}

/// Worker argv for a libtest binary: re-run the current executable,
/// selecting exactly the (`#[ignore]`d) test named `entry_test`, whose
/// body calls [`worker_main`]. The test returns immediately when
/// [`ENV_PARENT`] is unset, so the entry is inert in normal test runs.
///
/// # Panics
/// If the current executable path cannot be determined.
#[must_use]
pub fn libtest_worker_command(entry_test: &str) -> Vec<String> {
    let exe = std::env::current_exe()
        .expect("current_exe for dist worker spawn")
        .to_string_lossy()
        .into_owned();
    vec![
        exe,
        entry_test.to_string(),
        "--exact".to_string(),
        "--include-ignored".to_string(),
    ]
}

/// Errors of a distributed run.
#[derive(Debug)]
pub enum DistError {
    /// Socket / process I/O failed.
    Io(std::io::Error),
    /// A frame failed to decode.
    Wire(wire::WireError),
    /// The topology name is not in the registry.
    UnknownTopology(String),
    /// A worker reported an error or died before completing.
    Worker {
        /// Process index of the failing worker.
        index: usize,
        /// What it reported (or how it died).
        message: String,
    },
    /// The coordination protocol was violated or stalled.
    Protocol(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist i/o error: {e}"),
            DistError::Wire(e) => write!(f, "dist wire error: {e}"),
            DistError::UnknownTopology(t) => write!(f, "unknown dist topology {t:?}"),
            DistError::Worker { index, message } => {
                write!(f, "dist worker {index} failed: {message}")
            }
            DistError::Protocol(m) => write!(f, "dist protocol error: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<wire::WireError> for DistError {
    fn from(e: wire::WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Statistics of a distributed run: the parent's routing ledger plus the
/// sum of every worker's in-process runtime counters.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Worker process count.
    pub processes: usize,
    /// Cross-partition data frames the parent routed (duplicates
    /// included).
    pub frames_routed: u64,
    /// Retransmits drawn on cross wires by the parent's fault RNGs.
    pub wire_retransmits: u64,
    /// Duplicates drawn on cross wires by the parent's fault RNGs.
    pub wire_duplicates: u64,
    /// Frames delivered out of arrival order by the reorder fault.
    pub reordered_frames: u64,
    /// Partition windows opened by the counter schedule.
    pub partition_windows: u64,
    /// `Probe`/`ProbeAck` confirmation rounds the parent ran.
    pub probe_rounds: u64,
    /// Events processed, summed over every worker's runtime.
    pub events_processed: u64,
    /// Messages delivered on *local* wires, summed over workers.
    pub messages_delivered: u64,
    /// Duplicates drawn on local wires, summed over workers.
    pub duplicates: u64,
    /// Retransmits drawn on local wires, summed over workers.
    pub retransmits: u64,
    /// End-of-run rescue passes, summed over workers.
    pub rescue_passes: u64,
    /// Egress frames produced after `Collect` (rescue-drain output that
    /// could no longer cross the wire) — see the module docs.
    pub late_egress_frames: u64,
    /// Stall-recovery probe rounds the parent fired after a silence
    /// timeout (0 on a healthy run; at most 1 — a second stall is fatal).
    pub stall_retries: u64,
}

impl DistStats {
    /// Publish this run's routing ledger into a metrics registry under
    /// `dist.*` names. Call once per completed run.
    pub fn export_metrics(&self, reg: &blazes_obs::Registry) {
        reg.gauge("dist.processes").set(self.processes as i64);
        reg.counter("dist.frames.sent").add(self.frames_routed);
        reg.counter("dist.frames.retransmits")
            .add(self.wire_retransmits);
        reg.counter("dist.frames.duplicates")
            .add(self.wire_duplicates);
        reg.counter("dist.frames.reordered")
            .add(self.reordered_frames);
        reg.counter("dist.partition_windows")
            .add(self.partition_windows);
        reg.counter("dist.probe_rounds").add(self.probe_rounds);
        reg.counter("dist.stall_retries").add(self.stall_retries);
        reg.counter("dist.events").add(self.events_processed);
        reg.counter("dist.deliveries").add(self.messages_delivered);
        reg.counter("dist.late_egress_frames")
            .add(self.late_egress_frames);
    }
}

/// Result of [`run_dist`]: the topology's sinks — filled with the entries
/// streamed back from their owning workers, in each sink's arrival order
/// — and the run's statistics.
#[derive(Debug)]
pub struct DistRun {
    /// The assembly's sinks, keyed by global instance id.
    pub sinks: SinkSet,
    /// Routing + aggregated worker statistics.
    pub stats: DistStats,
}

// ---------------------------------------------------------------------
// Structure probe (parent-side assembly)
// ---------------------------------------------------------------------

/// One wire recorded by a [`ProbeBuilder`], in global numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeWire {
    /// Producer instance (global id).
    pub from: usize,
    /// Producer output port.
    pub out_port: usize,
    /// Consumer instance (global id).
    pub to: usize,
    /// Consumer input port.
    pub in_port: usize,
    /// Channel handle the wire was connected over.
    pub channel: usize,
}

/// An [`ExecutorBuilder`] that executes nothing: it records the pure
/// structure of an assembly — instance count and names, channel configs,
/// wires in global numbering, injection count. The parent runs the SPMD
/// assembly through it to learn the routing table; it is also handy for
/// asserting what a rewrite pass did to a graph without running it.
#[derive(Debug, Default)]
pub struct ProbeBuilder {
    names: Vec<String>,
    channels: Vec<ChannelConfig>,
    wires: Vec<ProbeWire>,
    injections: usize,
}

impl ProbeBuilder {
    /// A fresh probe.
    #[must_use]
    pub fn new() -> Self {
        ProbeBuilder::default()
    }

    /// Number of instances the assembly added.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.names.len()
    }

    /// Component names in instance order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Registered channel configurations, by handle.
    #[must_use]
    pub fn channels(&self) -> &[ChannelConfig] {
        &self.channels
    }

    /// Recorded wires; a wire's global number is its index here.
    #[must_use]
    pub fn wires(&self) -> &[ProbeWire] {
        &self.wires
    }

    /// Number of external injections the assembly made.
    #[must_use]
    pub fn injections(&self) -> usize {
        self.injections
    }
}

impl ExecutorBuilder for ProbeBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        self.names.push(component.name().to_string());
        InstanceId(self.names.len() - 1)
    }

    fn set_service_time(&mut self, _id: InstanceId, _service: Time) {}

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        self.channels.push(cfg);
        ChannelId(self.channels.len() - 1)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        self.wires.push(ProbeWire {
            from: from.0,
            out_port: out_port.0,
            to: to.0,
            in_port: in_port.0,
            channel: channel.0,
        });
    }

    fn inject(&mut self, _at: Time, _to: InstanceId, _port: PortId, _msg: Message) {
        self.injections += 1;
    }
}

// ---------------------------------------------------------------------
// Worker-side builder
// ---------------------------------------------------------------------

/// The egress shim interposed on a cross wire's producer side: forwards
/// every delivery to the worker's socket pump as `(wire, seq, message)`.
///
/// Deliberately offers no snapshot: in time-warp mode the runtime then
/// *defers* speculative deliveries to the egress until their epoch
/// resolves, so only committed traffic ever crosses a process boundary —
/// speculation stays process-local by construction.
struct Egress {
    wire: u64,
    seq: u64,
    queued: Arc<AtomicU64>,
    tx: mpsc::Sender<EgressFrame>,
}

impl Component for Egress {
    fn on_message(&mut self, _port: usize, msg: Message, _ctx: &mut Context) {
        // Count before sending: the idle check compares this counter
        // against the pump's written counter, and over-counting is the
        // safe direction (a frame in the channel reads as "not drained").
        self.queued.fetch_add(1, Ordering::SeqCst);
        let seq = self.seq;
        self.seq += 1;
        let _ = self.tx.send((self.wire, seq, msg));
    }

    fn name(&self) -> &str {
        "dist-egress"
    }
}

/// The cross-partition wiring a [`DistWorkerBuilder`] accumulated.
#[derive(Debug)]
pub struct DistWiring {
    /// Cross wires terminating locally: global wire → (local instance of
    /// the consumer, its input port).
    pub ingress: BTreeMap<u64, (InstanceId, PortId)>,
    /// Global wire numbers of cross wires originating locally.
    pub cross_out: Vec<u64>,
    /// Total instances in the global numbering (local and remote).
    pub instances: usize,
}

/// An [`ExecutorBuilder`] over a [`ParBuilder`] that realizes one
/// process's partition of an SPMD assembly.
///
/// Every process runs the identical assembly through one of these; the
/// builder hands out *global* instance/channel ids (so the assembly sees
/// the same ids everywhere) while materializing only what process
/// `index` owns. Wires between two local instances are connected with
/// their global wire number ([`ParBuilder`]'s fault streams key on it);
/// wires leaving the partition get an egress shim; wires entering it
/// are recorded in the ingress table for [`RunningPar::inject`] delivery.
pub struct DistWorkerBuilder<'a> {
    inner: &'a mut ParBuilder,
    index: usize,
    processes: usize,
    /// Global instance id → local par id (`None` = owned elsewhere).
    local_of: Vec<Option<InstanceId>>,
    /// Global channel id → local par channel id.
    local_channel: Vec<ChannelId>,
    next_wire: u64,
    egress_channel: Option<ChannelId>,
    egress_queued: Arc<AtomicU64>,
    egress_tx: mpsc::Sender<EgressFrame>,
    ingress: BTreeMap<u64, (InstanceId, PortId)>,
    cross_out: Vec<u64>,
}

impl<'a> DistWorkerBuilder<'a> {
    /// Wrap `inner` as process `index` of `processes`. Returns the
    /// builder, the receiving end of its egress queue, and the shared
    /// egress-enqueue counter (compare against frames actually written to
    /// decide the queue has drained).
    ///
    /// # Panics
    /// If `processes` is zero or `index` is out of range.
    #[must_use]
    pub fn new(
        inner: &'a mut ParBuilder,
        index: usize,
        processes: usize,
    ) -> (Self, mpsc::Receiver<EgressFrame>, Arc<AtomicU64>) {
        assert!(processes >= 1, "at least one process");
        assert!(index < processes, "index within process count");
        let (tx, rx) = mpsc::channel();
        let queued = Arc::new(AtomicU64::new(0));
        (
            DistWorkerBuilder {
                inner,
                index,
                processes,
                local_of: Vec::new(),
                local_channel: Vec::new(),
                next_wire: 0,
                egress_channel: None,
                egress_queued: Arc::clone(&queued),
                egress_tx: tx,
                ingress: BTreeMap::new(),
                cross_out: Vec::new(),
            },
            rx,
            queued,
        )
    }

    /// Local par id of global instance `id`, if owned here.
    #[must_use]
    pub fn local_of(&self, id: InstanceId) -> Option<InstanceId> {
        self.local_of.get(id.0).copied().flatten()
    }

    /// Consume the builder, returning the accumulated cross wiring.
    #[must_use]
    pub fn finish(self) -> DistWiring {
        DistWiring {
            ingress: self.ingress,
            cross_out: self.cross_out,
            instances: self.local_of.len(),
        }
    }
}

impl ExecutorBuilder for DistWorkerBuilder<'_> {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let global = self.local_of.len();
        let local = (owner(global, self.processes) == self.index)
            .then(|| self.inner.add_instance(component));
        self.local_of.push(local);
        InstanceId(global)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        if let Some(local) = self.local_of[id.0] {
            self.inner.set_service_time(local, service);
        }
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        let local = self.inner.add_channel(cfg);
        self.local_channel.push(local);
        ChannelId(self.local_channel.len() - 1)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        let wire = self.next_wire;
        self.next_wire += 1;
        match (self.local_of[from.0], self.local_of[to.0]) {
            (Some(f), Some(t)) => {
                self.inner.connect_numbered(
                    f,
                    out_port,
                    t,
                    in_port,
                    self.local_channel[channel.0],
                    wire,
                );
            }
            (Some(f), None) => {
                let shim = self.inner.add_instance(Box::new(Egress {
                    wire,
                    seq: 0,
                    queued: Arc::clone(&self.egress_queued),
                    tx: self.egress_tx.clone(),
                }));
                let inner = &mut *self.inner;
                let ch = *self
                    .egress_channel
                    .get_or_insert_with(|| inner.add_channel(ChannelConfig::instant()));
                self.inner.connect_numbered(
                    f,
                    out_port,
                    shim,
                    PortId(0),
                    ch,
                    EGRESS_WIRE_BASE + wire,
                );
                self.cross_out.push(wire);
            }
            (None, Some(t)) => {
                self.ingress.insert(wire, (t, in_port));
            }
            (None, None) => {}
        }
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        if let Some(local) = self.local_of[to.0] {
            self.inner.inject(at, local, port, msg);
        }
    }
}

// ---------------------------------------------------------------------
// Parent: routing with wire faults
// ---------------------------------------------------------------------

/// Parent-side state of one cross wire.
struct WireRoute {
    /// Owner of the consumer — where frames of this wire go.
    dest: usize,
    loss_prob: f64,
    duplicate_prob: f64,
    /// Loss/duplication stream — the exact RNG a local [`ParBuilder`]
    /// wire would own, same seed formula, same per-send draw order.
    rng: Option<StdRng>,
    /// Independent stream for the reorder fault.
    reorder_rng: Option<StdRng>,
}

/// The parent's serial router: applies per-wire faults and the
/// frame-level reorder/partition perturbations, then writes frames to
/// the destination worker's socket. Serial on purpose — one thread owns
/// every draw, so fault schedules cannot race.
struct Router {
    routes: HashMap<u64, WireRoute>,
    writers: Vec<UnixStream>,
    sent_to: Vec<u64>,
    /// Reorder hold slot per destination process.
    held: Vec<Option<(u64, Vec<u8>)>>,
    reorder_prob: f64,
    partition: Option<(u64, u64)>,
    /// Frames emitted outside partition windows (drives the schedule).
    emitted: u64,
    /// Frames still to buffer in the currently open window.
    window_left: u64,
    window_buf: Vec<(usize, Vec<u8>)>,
    stats: DistStats,
}

impl Router {
    /// Route one `Data` frame arriving from a worker.
    fn route(&mut self, wire: u64, seq: u64, msg: &Message) -> Result<(), DistError> {
        let route = self
            .routes
            .get_mut(&wire)
            .ok_or_else(|| DistError::Protocol(format!("data frame for unknown wire {wire}")))?;
        let dest = route.dest;
        let mut duplicate = false;
        if let Some(rng) = route.rng.as_mut() {
            // Mirror of the par backend's send path: loss first (counted
            // as a retransmit, still delivered — at-least-once), then
            // duplication, each draw taken only when its probability is
            // nonzero.
            if route.loss_prob > 0.0 && rng.random::<f64>() < route.loss_prob {
                self.stats.wire_retransmits += 1;
            }
            duplicate = route.duplicate_prob > 0.0 && rng.random::<f64>() < route.duplicate_prob;
        }
        let reorder = self.reorder_prob > 0.0
            && route
                .reorder_rng
                .as_mut()
                .is_some_and(|r| r.random::<f64>() < self.reorder_prob);
        let bytes = wire::encode(&Frame::Data {
            wire,
            seq,
            msg: msg.clone(),
        });
        if duplicate {
            self.stats.wire_duplicates += 1;
        }
        let copies = if duplicate { 2 } else { 1 };
        for copy in 0..copies {
            // Only the first copy may be held: a held duplicate would sit
            // *behind* its twin and re-swap back on flush.
            self.deliver(dest, wire, bytes.clone(), reorder && copy == 0)?;
        }
        Ok(())
    }

    /// Reorder layer: swap a held frame with the next frame for the same
    /// destination, unless both are on the same wire (per-wire FIFO).
    fn deliver(
        &mut self,
        dest: usize,
        wire_id: u64,
        bytes: Vec<u8>,
        hold: bool,
    ) -> Result<(), DistError> {
        if let Some((held_wire, held_bytes)) = self.held[dest].take() {
            if held_wire == wire_id {
                // Same wire follows: release in order, no swap.
                self.emit(dest, held_bytes)?;
                self.emit(dest, bytes)?;
            } else {
                self.stats.reordered_frames += 1;
                self.emit(dest, bytes)?;
                self.emit(dest, held_bytes)?;
            }
            return Ok(());
        }
        if hold {
            self.held[dest] = Some((wire_id, bytes));
            return Ok(());
        }
        self.emit(dest, bytes)
    }

    /// Partition layer + the actual socket write.
    fn emit(&mut self, dest: usize, bytes: Vec<u8>) -> Result<(), DistError> {
        if self.window_left > 0 {
            self.window_buf.push((dest, bytes));
            self.window_left -= 1;
            if self.window_left == 0 {
                // Heal: release the buffered window in arrival order.
                for (d, b) in std::mem::take(&mut self.window_buf) {
                    self.write(d, &b)?;
                }
            }
            return Ok(());
        }
        self.write(dest, &bytes)?;
        if let Some((every, len)) = self.partition {
            self.emitted += 1;
            if every > 0 && len > 0 && self.emitted.is_multiple_of(every) {
                self.window_left = len;
                self.stats.partition_windows += 1;
            }
        }
        Ok(())
    }

    fn write(&mut self, dest: usize, bytes: &[u8]) -> Result<(), DistError> {
        self.writers[dest].write_all(bytes)?;
        self.sent_to[dest] += 1;
        self.stats.frames_routed += 1;
        blazes_obs::record(
            blazes_obs::EventKind::FrameSend,
            dest as u64,
            self.sent_to[dest],
        );
        Ok(())
    }

    /// Release everything the fault layers are sitting on (traffic has
    /// paused; holding further would stall termination).
    fn flush(&mut self) -> Result<(), DistError> {
        for dest in 0..self.held.len() {
            if let Some((_, bytes)) = self.held[dest].take() {
                self.emit(dest, bytes)?;
            }
        }
        if !self.window_buf.is_empty() {
            self.window_left = 0;
            for (d, b) in std::mem::take(&mut self.window_buf) {
                self.write(d, &b)?;
            }
        }
        Ok(())
    }

    /// Nothing buffered in any fault layer?
    fn drained(&self) -> bool {
        self.window_buf.is_empty() && self.held.iter().all(Option::is_none)
    }

    /// Send a control frame to one worker (bypasses the fault layers —
    /// faults model the data plane, not the coordinator's own protocol).
    fn control(&mut self, dest: usize, frame: &Frame) -> Result<(), DistError> {
        self.writers[dest].write_all(&wire::encode(frame))?;
        Ok(())
    }
}

/// Removes the socket directory on drop (best effort).
struct TempDir(PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills any still-running child on drop, so an error path can never leak
/// worker processes.
struct Children(Vec<std::process::Child>);

impl Drop for Children {
    fn drop(&mut self) {
        for child in &mut self.0 {
            if child.try_wait().ok().flatten().is_none() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Events the parent's per-worker reader threads feed the main loop.
enum Event {
    Frame(usize, Frame),
    Decode(usize, wire::WireError),
    Eof(usize),
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// How long the parent tolerates total silence before declaring the run
/// stalled. Generous: CI machines stall on scheduling, not logic.
const STALL_TIMEOUT: Duration = Duration::from_secs(120);

/// Execute `spec` across real worker processes and collect the sinks.
///
/// The parent probes the assembly for structure, binds a Unix socket in a
/// fresh temp directory, spawns `spec.processes` workers with
/// [`ENV_PARENT`]/[`ENV_INDEX`] set, ships each its plan, routes every
/// cross-partition frame (applying the wire fault schedule), and — once
/// the stability protocol holds — collects sink contents and statistics.
///
/// # Errors
/// Any I/O, decode, protocol or worker failure; see [`DistError`].
///
/// # Panics
/// If `spec.processes` or `spec.workers_per_process` is zero, or the
/// worker command is empty.
pub fn run_dist(spec: &DistSpec, registry: &Registry) -> Result<DistRun, DistError> {
    assert!(spec.processes >= 1, "at least one worker process");
    assert!(spec.workers_per_process >= 1, "at least one worker thread");
    assert!(!spec.worker_command.is_empty(), "empty worker command");
    let processes = spec.processes;

    // Learn the structure by running the SPMD assembly against a probe.
    let mut probe = ProbeBuilder::new();
    let sinks = registry.assemble(&spec.topology, &spec.params, &mut probe)?;

    let mut routes = HashMap::new();
    for (wire_id, w) in probe.wires().iter().enumerate() {
        if owner(w.from, processes) == owner(w.to, processes) {
            continue;
        }
        let cfg = &probe.channels()[w.channel];
        let wire_id = wire_id as u64;
        let faulty = cfg.loss_prob > 0.0 || cfg.duplicate_prob > 0.0;
        routes.insert(
            wire_id,
            WireRoute {
                dest: owner(w.to, processes),
                loss_prob: cfg.loss_prob,
                duplicate_prob: cfg.duplicate_prob,
                rng: faulty.then(|| {
                    StdRng::seed_from_u64(
                        spec.seed ^ (wire_id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    )
                }),
                reorder_rng: (spec.reorder_prob > 0.0).then(|| {
                    StdRng::seed_from_u64(spec.seed ^ (wire_id + 1).wrapping_mul(REORDER_MIX))
                }),
            },
        );
    }

    // Socket in a private temp dir; cleaned up whatever happens.
    let dir = std::env::temp_dir().join(format!(
        "blazes-dist-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir)?;
    let _dir_guard = TempDir(dir.clone());
    let sock = dir.join("coord.sock");
    let listener = UnixListener::bind(&sock)?;

    // Spawn the fleet.
    let mut children = Children(Vec::with_capacity(processes));
    for i in 0..processes {
        let child = std::process::Command::new(&spec.worker_command[0])
            .args(&spec.worker_command[1..])
            .env(ENV_PARENT, &sock)
            .env(ENV_INDEX, i.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()?;
        children.0.push(child);
    }

    // Accept every worker; each introduces itself with `Hello{index}`.
    let mut streams: Vec<Option<UnixStream>> = (0..processes).map(|_| None).collect();
    for _ in 0..processes {
        let (stream, _) = listener.accept()?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let index = read_hello(&stream)?;
        if index >= processes || streams[index].is_some() {
            return Err(DistError::Protocol(format!("bad hello index {index}")));
        }
        stream.set_read_timeout(None)?;
        streams[index] = Some(stream);
    }
    let streams: Vec<UnixStream> = streams.into_iter().map(Option::unwrap).collect();

    // Ship the plan and start the reader threads. When tracing is on in
    // this process, every worker records too and ships its lanes back
    // during collection, so one export shows the whole fleet.
    let trace = blazes_obs::enabled();
    let (tx, rx) = mpsc::channel::<Event>();
    let mut readers = Vec::with_capacity(processes);
    let mut writers = Vec::with_capacity(processes);
    for (i, stream) in streams.into_iter().enumerate() {
        let mut writer = stream.try_clone()?;
        writer.write_all(&wire::encode(&Frame::Plan {
            topology: spec.topology.clone(),
            params: spec.params.clone(),
            seed: spec.seed,
            processes: processes as u32,
            index: i as u32,
            workers: spec.workers_per_process as u32,
            stealing: spec.stealing,
            speculation: spec.speculation,
            trace,
        }))?;
        writers.push(writer);
        let tx = tx.clone();
        readers.push(std::thread::spawn(move || reader_loop(i, stream, &tx)));
    }
    drop(tx);

    let mut router = Router {
        routes,
        writers,
        sent_to: vec![0; processes],
        held: (0..processes).map(|_| None).collect(),
        reorder_prob: spec.reorder_prob,
        partition: spec.partition,
        emitted: 0,
        window_left: 0,
        window_buf: Vec::new(),
        stats: DistStats {
            processes,
            ..DistStats::default()
        },
    };

    // Phase 1: route until stable.
    let mut recv_from = vec![0u64; processes];
    let mut idle_report: Vec<Option<(u64, u64)>> = vec![None; processes];
    let mut probe_nonce = 0u64;
    let mut acks: Vec<Option<bool>> = vec![None; processes];
    let mut awaiting_probe = false;
    let mut last_activity = Instant::now();
    let mut last_frame: Vec<&'static str> = vec!["<none>"; processes];
    let mut stalled_once = false;
    loop {
        let event = match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if last_activity.elapsed() > STALL_TIMEOUT {
                    if !stalled_once {
                        // One bounded recovery round: a probe is answered
                        // even by a worker whose Idle report was lost or
                        // raced, so it un-wedges the known single-core
                        // "everyone idle, nobody confirming" interleaving.
                        stalled_once = true;
                        router.stats.stall_retries += 1;
                        router.flush()?;
                        probe_nonce += 1;
                        acks = vec![None; processes];
                        awaiting_probe = true;
                        router.stats.probe_rounds += 1;
                        for w in 0..processes {
                            router.control(w, &Frame::Probe { nonce: probe_nonce })?;
                        }
                        last_activity = Instant::now();
                        continue;
                    }
                    dump_stall_forensics(
                        &recv_from,
                        &router.sent_to,
                        &idle_report,
                        &acks,
                        &last_frame,
                        awaiting_probe,
                        router.drained(),
                    );
                    return Err(DistError::Protocol("run stalled".to_string()));
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(DistError::Protocol("all readers gone".to_string()));
            }
        };
        last_activity = Instant::now();
        if let Event::Frame(i, frame) = &event {
            last_frame[*i] = frame_name(frame);
        }
        match event {
            Event::Frame(i, Frame::Data { wire, seq, msg }) => {
                blazes_obs::record(blazes_obs::EventKind::FrameRecv, wire, seq);
                recv_from[i] += 1;
                idle_report[i] = None;
                awaiting_probe = false;
                router.route(wire, seq, &msg)?;
            }
            Event::Frame(i, Frame::Idle { sent, recv }) => {
                // Traffic paused at worker `i`: release anything the
                // fault layers hold, then see whether the whole run has
                // gone quiet.
                router.flush()?;
                idle_report[i] = Some((sent, recv));
                let stable = router.drained()
                    && idle_report
                        .iter()
                        .enumerate()
                        .all(|(w, r)| *r == Some((recv_from[w], router.sent_to[w])));
                if stable && !awaiting_probe {
                    probe_nonce += 1;
                    acks = vec![None; processes];
                    awaiting_probe = true;
                    router.stats.probe_rounds += 1;
                    for w in 0..processes {
                        router.control(w, &Frame::Probe { nonce: probe_nonce })?;
                    }
                }
            }
            Event::Frame(
                i,
                Frame::ProbeAck {
                    nonce,
                    sent,
                    recv,
                    idle,
                },
            ) => {
                if awaiting_probe && nonce == probe_nonce {
                    acks[i] = Some(idle && sent == recv_from[i] && recv == router.sent_to[i]);
                    if acks.iter().all(|a| *a == Some(true)) {
                        break; // confirmed stable
                    }
                    if acks.iter().all(Option::is_some) {
                        awaiting_probe = false; // retry on the next Idle
                    }
                }
            }
            Event::Frame(i, Frame::Error { message }) => {
                return Err(DistError::Worker { index: i, message });
            }
            Event::Frame(_, _) => {}
            Event::Decode(i, e) => {
                return Err(DistError::Worker {
                    index: i,
                    message: format!("stream corrupt: {e}"),
                });
            }
            Event::Eof(i) => {
                return Err(DistError::Worker {
                    index: i,
                    message: "exited before collection".to_string(),
                });
            }
        }
    }

    // Phase 2: collect sinks and stats, then shut the fleet down.
    for w in 0..processes {
        router.control(w, &Frame::Collect)?;
    }
    let mut done = vec![false; processes];
    while !done.iter().all(|d| *d) {
        let event = rx
            .recv_timeout(STALL_TIMEOUT)
            .map_err(|_| DistError::Protocol("stalled during collection".to_string()))?;
        match event {
            Event::Frame(_, Frame::SinkResult { sink, entries }) => {
                let (_, handle) = sinks
                    .get(sink as usize)
                    .ok_or_else(|| DistError::Protocol(format!("unknown sink {sink}")))?;
                handle.extend(entries);
            }
            Event::Frame(
                i,
                Frame::Done {
                    events,
                    delivered,
                    duplicates,
                    retransmits,
                    rescue_passes,
                    late,
                },
            ) => {
                router.stats.events_processed += events;
                router.stats.messages_delivered += delivered;
                router.stats.duplicates += duplicates;
                router.stats.retransmits += retransmits;
                router.stats.rescue_passes += rescue_passes;
                router.stats.late_egress_frames += late;
                done[i] = true;
            }
            Event::Frame(_, Frame::Trace { pid, tid, events }) => {
                // Unknown event kinds (version skew) drop here, at
                // ingestion — the codec accepted them as raw words.
                let events: Vec<blazes_obs::Event> = events
                    .into_iter()
                    .filter_map(blazes_obs::Event::from_words)
                    .collect();
                blazes_obs::global().ingest_remote(vec![blazes_obs::RemoteLane {
                    pid,
                    tid,
                    events,
                }]);
            }
            Event::Frame(i, Frame::Error { message }) => {
                return Err(DistError::Worker { index: i, message });
            }
            Event::Frame(_, _) => {}
            Event::Decode(i, e) => {
                return Err(DistError::Worker {
                    index: i,
                    message: format!("stream corrupt: {e}"),
                });
            }
            Event::Eof(i) => {
                if !done[i] {
                    return Err(DistError::Worker {
                        index: i,
                        message: "exited during collection".to_string(),
                    });
                }
            }
        }
    }
    for w in 0..processes {
        router.control(w, &Frame::Shutdown)?;
    }
    drop(router.writers);
    for reader in readers {
        let _ = reader.join();
    }
    for child in &mut children.0 {
        let _ = child.wait();
    }
    children.0.clear();

    if blazes_obs::enabled() {
        router.stats.export_metrics(blazes_obs::global().registry());
    }
    Ok(DistRun {
        sinks,
        stats: router.stats,
    })
}

/// Short display name of a frame, for the stall forensic dump.
fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "hello",
        Frame::Plan { .. } => "plan",
        Frame::Data { .. } => "data",
        Frame::Idle { .. } => "idle",
        Frame::Probe { .. } => "probe",
        Frame::ProbeAck { .. } => "probe-ack",
        Frame::Collect => "collect",
        Frame::SinkResult { .. } => "sink-result",
        Frame::Done { .. } => "done",
        Frame::Shutdown => "shutdown",
        Frame::Error { .. } => "error",
        Frame::Trace { .. } => "trace",
    }
}

/// Print the coordinator's per-worker ledger to stderr before giving up
/// on a stalled run — the difference between "flaked again" and a
/// diagnosable interleaving in CI logs.
fn dump_stall_forensics(
    recv_from: &[u64],
    sent_to: &[u64],
    idle_report: &[Option<(u64, u64)>],
    acks: &[Option<bool>],
    last_frame: &[&'static str],
    awaiting_probe: bool,
    router_drained: bool,
) {
    eprintln!(
        "dist coordinator stalled after {}s of silence (retry exhausted); \
         awaiting_probe={awaiting_probe} router_drained={router_drained}",
        STALL_TIMEOUT.as_secs()
    );
    for i in 0..recv_from.len() {
        let idle =
            idle_report[i].map_or("<none>".to_string(), |(s, r)| format!("sent={s} recv={r}"));
        let ack = match acks[i] {
            None => "<pending>",
            Some(true) => "stable",
            Some(false) => "unstable",
        };
        eprintln!(
            "  worker {i}: routed_to={} recv_from={} last_frame={} idle_report={idle} probe_ack={ack}",
            sent_to[i], recv_from[i], last_frame[i]
        );
    }
}

/// Read the `Hello` frame a freshly connected worker must send first.
fn read_hello(stream: &UnixStream) -> Result<usize, DistError> {
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 256];
    loop {
        if let Some(frame) = decoder.next_frame()? {
            return match frame {
                Frame::Hello { index } => Ok(index as usize),
                other => Err(DistError::Protocol(format!(
                    "expected hello, got {other:?}"
                ))),
            };
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(DistError::Protocol("eof before hello".to_string()));
        }
        decoder.push(&buf[..n]);
    }
}

/// Parent-side reader thread: decode one worker's stream into events.
fn reader_loop(index: usize, mut stream: UnixStream, tx: &mpsc::Sender<Event>) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Event::Eof(index));
                return;
            }
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if tx.send(Event::Frame(index, frame)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Event::Decode(index, e));
                            return;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Worker entry point. Returns `false` immediately when [`ENV_PARENT`]
/// is not set (the process is not a dist worker — e.g. the `#[ignore]`d
/// libtest entry ran in a normal test sweep); otherwise connects to the
/// parent, executes its partition to completion and returns `true`.
///
/// # Panics
/// On any I/O or protocol failure — a worker dies loudly so the parent's
/// reader sees EOF instead of a hang.
pub fn worker_main(registry: &Registry) -> bool {
    let Some(path) = std::env::var_os(ENV_PARENT) else {
        return false;
    };
    let index: usize = std::env::var(ENV_INDEX)
        .expect("dist worker index")
        .parse()
        .expect("numeric dist worker index");
    match worker_run(registry, &PathBuf::from(path), index) {
        Ok(()) => true,
        Err(e) => panic!("dist worker {index} failed: {e}"),
    }
}

/// One frame read tick on the worker's control loop.
const WORKER_POLL: Duration = Duration::from_millis(2);

fn worker_run(registry: &Registry, path: &std::path::Path, index: usize) -> Result<(), DistError> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(&wire::encode(&Frame::Hello {
        index: index as u32,
    }))?;

    // Wait for the plan.
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let plan = loop {
        if let Some(frame) = decoder.next_frame()? {
            match frame {
                Frame::Plan { .. } => break frame,
                Frame::Shutdown => return Ok(()),
                other => return Err(DistError::Protocol(format!("expected plan, got {other:?}"))),
            }
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(DistError::Protocol("eof before plan".to_string()));
        }
        decoder.push(&buf[..n]);
    };
    let Frame::Plan {
        topology,
        params,
        seed,
        processes,
        index: plan_index,
        workers,
        stealing,
        speculation,
        trace,
    } = plan
    else {
        unreachable!("matched above");
    };
    if plan_index as usize != index {
        return Err(DistError::Protocol(format!(
            "plan for worker {plan_index}, I am {index}"
        )));
    }
    if trace {
        // Record under pid lane index+1 (0 is the coordinator) and ship
        // the lanes back during collection.
        let obs = blazes_obs::global();
        obs.set_pid(index as u32 + 1);
        obs.set_enabled(true);
    }

    // SPMD assembly of this partition.
    let mut pb = ParBuilder::new(seed)
        .with_workers(workers as usize)
        .with_stealing(stealing)
        .with_speculation(speculation);
    let (mut builder, egress_rx, egress_queued) =
        DistWorkerBuilder::new(&mut pb, index, processes as usize);
    let sinks = registry.assemble(&topology, &params, &mut builder)?;
    let wiring = builder.finish();

    let running = pb.build().start();

    // Egress pump: encode and write cross-partition frames. Shares the
    // socket with the control loop's replies through a mutex; the pump
    // is the only high-volume writer.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let written = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let writer = Arc::clone(&writer);
        let written = Arc::clone(&written);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<(), DistError> {
            loop {
                match egress_rx.recv_timeout(WORKER_POLL) {
                    Ok((wire, seq, msg)) => {
                        let bytes = wire::encode(&Frame::Data { wire, seq, msg });
                        writer
                            .lock()
                            .map_err(|_| DistError::Protocol("pump writer poisoned".into()))?
                            .write_all(&bytes)?;
                        written.fetch_add(1, Ordering::SeqCst);
                        blazes_obs::record(blazes_obs::EventKind::FrameSend, wire, seq);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                }
            }
        })
    };

    // Control loop: deliver ingress frames, answer probes, report idleness.
    stream.set_read_timeout(Some(WORKER_POLL))?;
    let mut recv = 0u64;
    let mut last_seq: HashMap<u64, u64> = HashMap::new();
    let mut last_idle: Option<(u64, u64)> = None;
    let collect = 'control: loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(DistError::Protocol("parent closed early".to_string()));
            }
            Ok(n) => {
                decoder.push(&buf[..n]);
                while let Some(frame) = decoder.next_frame()? {
                    match frame {
                        Frame::Data { wire, seq, msg } => {
                            // Per-wire FIFO assertion: sequence numbers
                            // are contiguous, duplicates repeat one.
                            let expected = last_seq.get(&wire).map_or(0, |s| s + 1);
                            if seq != expected && Some(seq) != expected.checked_sub(1) {
                                let m = format!(
                                    "wire {wire} broke FIFO: seq {seq}, expected {expected}"
                                );
                                send_control(&writer, &Frame::Error { message: m.clone() })?;
                                return Err(DistError::Protocol(m));
                            }
                            last_seq.insert(wire, seq.max(expected.saturating_sub(1)));
                            blazes_obs::record(blazes_obs::EventKind::FrameRecv, wire, seq);
                            let (inst, port) = *wiring.ingress.get(&wire).ok_or_else(|| {
                                DistError::Protocol(format!("no ingress for wire {wire}"))
                            })?;
                            running.inject(inst, port, msg);
                            recv += 1;
                            last_idle = None;
                        }
                        Frame::Probe { nonce } => {
                            let sent = written.load(Ordering::SeqCst);
                            let idle =
                                running.settled() && egress_queued.load(Ordering::SeqCst) == sent;
                            send_control(
                                &writer,
                                &Frame::ProbeAck {
                                    nonce,
                                    sent,
                                    recv,
                                    idle,
                                },
                            )?;
                        }
                        Frame::Collect => break 'control true,
                        Frame::Shutdown => break 'control false,
                        other => {
                            return Err(DistError::Protocol(format!(
                                "unexpected frame in run phase: {other:?}"
                            )))
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Quiet tick: report idleness when the local runtime has
                // settled and every egress frame has hit the socket.
                let sent = written.load(Ordering::SeqCst);
                if running.settled()
                    && egress_queued.load(Ordering::SeqCst) == sent
                    && last_idle != Some((sent, recv))
                {
                    send_control(&writer, &Frame::Idle { sent, recv })?;
                    last_idle = Some((sent, recv));
                }
            }
            Err(e) => return Err(DistError::Io(e)),
        }
    };

    // Finish the local run (end-of-run rescue happens inside), then stop
    // the pump and account anything the rescue tried to send after the
    // wire closed for data.
    let stats = running.finish();
    stop.store(true, Ordering::SeqCst);
    pump.join()
        .map_err(|_| DistError::Protocol("egress pump panicked".to_string()))??;
    let late = egress_queued.load(Ordering::SeqCst) - written.load(Ordering::SeqCst);

    if collect {
        for (pos, (id, sink)) in sinks.iter().enumerate() {
            if owner(id.0, processes as usize) == index {
                send_control(
                    &writer,
                    &Frame::SinkResult {
                        sink: pos as u32,
                        entries: sink.entries(),
                    },
                )?;
            }
        }
        if trace {
            for lane in blazes_obs::global().drain_lanes() {
                send_control(
                    &writer,
                    &Frame::Trace {
                        pid: lane.pid,
                        tid: lane.tid,
                        events: lane
                            .events
                            .into_iter()
                            .map(blazes_obs::Event::to_words)
                            .collect(),
                    },
                )?;
            }
        }
        send_control(
            &writer,
            &Frame::Done {
                events: stats.events_processed,
                delivered: stats.messages_delivered,
                duplicates: stats.duplicates,
                retransmits: stats.retransmits,
                rescue_passes: stats.rescue_passes,
                late,
            },
        )?;
        // Wait for the shutdown order (keeps the socket open until the
        // parent has drained our results).
        stream.set_read_timeout(None)?;
        loop {
            if let Some(frame) = decoder.next_frame()? {
                if matches!(frame, Frame::Shutdown) {
                    break;
                }
                continue;
            }
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => decoder.push(&buf[..n]),
                Err(_) => break,
            }
        }
    }
    Ok(())
}

/// Serialize one control frame onto the shared worker socket.
fn send_control(writer: &Arc<Mutex<UnixStream>>, frame: &Frame) -> Result<(), DistError> {
    writer
        .lock()
        .map_err(|_| DistError::Protocol("writer poisoned".to_string()))?
        .write_all(&wire::encode(frame))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg)
        }))
    }

    /// The SPMD assembly used by the in-process partition tests: two
    /// echo stages into a sink, instances interleaved across owners.
    fn chain(b: &mut dyn ExecutorBuilder) -> SinkSet {
        let a = b.add_instance(echo());
        let m = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        let ch = b.add_channel(ChannelConfig::lan());
        b.connect(a, PortId(0), m, PortId(0), ch);
        b.connect(m, PortId(0), s, PortId(0), ch);
        for i in 0..50i64 {
            b.inject(0, a, PortId(0), Message::data([i]));
        }
        vec![(s, sink)]
    }

    #[test]
    fn ownership_is_round_robin() {
        assert_eq!(owner(0, 2), 0);
        assert_eq!(owner(1, 2), 1);
        assert_eq!(owner(5, 2), 1);
        assert_eq!(owner(5, 1), 0);
        assert_eq!(owner(5, 4), 1);
    }

    /// Global numbering must be identical no matter which index runs the
    /// assembly, and cross wiring must mirror: a wire leaving partition A
    /// appears in A's `cross_out` and in B's `ingress`.
    #[test]
    fn spmd_numbering_and_cross_wiring_agree() {
        let mut pb0 = ParBuilder::new(1);
        let (mut b0, _rx0, _q0) = DistWorkerBuilder::new(&mut pb0, 0, 2);
        let sinks0 = chain(&mut b0);
        let w0 = b0.finish();

        let mut pb1 = ParBuilder::new(1);
        let (mut b1, _rx1, _q1) = DistWorkerBuilder::new(&mut pb1, 1, 2);
        let sinks1 = chain(&mut b1);
        let w1 = b1.finish();

        assert_eq!(sinks0[0].0, sinks1[0].0, "global sink ids agree");
        assert_eq!(w0.instances, 3);
        assert_eq!(w1.instances, 3);
        // Instances 0 (a) and 2 (s) are owned by 0; instance 1 (m) by 1.
        // Wire 0: a->m crosses 0->1; wire 1: m->s crosses 1->0.
        assert_eq!(w0.cross_out, vec![0]);
        assert_eq!(
            w1.ingress.get(&0).copied(),
            Some((InstanceId(0), PortId(0))),
            "worker 1's local id for global instance 1 is its first par instance"
        );
        assert_eq!(w1.cross_out, vec![1]);
        assert!(w0.ingress.contains_key(&1));
    }

    /// Full partition semantics without processes: run the chain split
    /// across two in-process par runtimes, shuttle egress frames by hand,
    /// and compare against an unpartitioned run.
    #[test]
    fn manual_two_partition_run_matches_unpartitioned() {
        // Reference: single par backend.
        let mut reference = ParBuilder::new(9).with_workers(2);
        let ref_sinks = chain(&mut reference);
        let _ = reference.build().run();
        let expected = ref_sinks[0].1.message_set();
        assert_eq!(expected.len(), 50);

        // Partitioned: two runtimes, manual router.
        let mut pb0 = ParBuilder::new(9).with_workers(2);
        let (mut b0, rx0, q0) = DistWorkerBuilder::new(&mut pb0, 0, 2);
        let sinks0 = chain(&mut b0);
        let w0 = b0.finish();
        let mut pb1 = ParBuilder::new(9).with_workers(2);
        let (mut b1, rx1, q1) = DistWorkerBuilder::new(&mut pb1, 1, 2);
        let _sinks1 = chain(&mut b1);
        let w1 = b1.finish();

        let r0 = pb0.build().start();
        let r1 = pb1.build().start();
        let mut moved = (0u64, 0u64);
        // Shuttle until both partitions quiesce with drained queues.
        loop {
            let mut progress = false;
            while let Ok((wire, _seq, msg)) = rx0.try_recv() {
                let (inst, port) = w1.ingress[&wire];
                r1.inject(inst, port, msg);
                moved.0 += 1;
                progress = true;
            }
            while let Ok((wire, _seq, msg)) = rx1.try_recv() {
                let (inst, port) = w0.ingress[&wire];
                r0.inject(inst, port, msg);
                moved.1 += 1;
                progress = true;
            }
            if !progress
                && r0.settled()
                && r1.settled()
                && q0.load(Ordering::SeqCst) == moved.0
                && q1.load(Ordering::SeqCst) == moved.1
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = r1.finish();
        let _ = r0.finish();
        assert_eq!(moved.0, 50, "a->m crossed once per message");
        assert_eq!(moved.1, 50, "m->s crossed once per message");
        assert_eq!(sinks0[0].1.message_set(), expected);
    }

    /// The registry rejects unknown names and dispatches known ones.
    #[test]
    fn registry_dispatches_by_name() {
        let mut reg = Registry::new();
        reg.register("chain", |b, _params| chain(b));
        assert_eq!(reg.names(), vec!["chain"]);
        let mut probe = ProbeBuilder::new();
        let sinks = reg.assemble("chain", "", &mut probe).unwrap();
        assert_eq!(probe.instances(), 3);
        assert_eq!(probe.wires().len(), 2);
        assert_eq!(probe.injections(), 50);
        assert_eq!(sinks.len(), 1);
        assert!(matches!(
            reg.assemble("nope", "", &mut ProbeBuilder::new()),
            Err(DistError::UnknownTopology(_))
        ));
    }

    /// The probe records wires in global numbering with their channels.
    #[test]
    fn probe_builder_records_structure() {
        let mut probe = ProbeBuilder::new();
        let a = probe.add_instance(echo());
        let b2 = probe.add_instance(echo());
        let ch = probe.add_channel(ChannelConfig::lan().with_loss(0.25));
        probe.connect(a, PortId(0), b2, PortId(0), ch);
        assert_eq!(probe.names(), &["echo".to_string(), "echo".to_string()]);
        assert_eq!(
            probe.wires(),
            &[ProbeWire {
                from: 0,
                out_port: 0,
                to: 1,
                in_port: 0,
                channel: 0
            }]
        );
        assert!(probe.channels()[0].loss_prob > 0.2);
    }

    /// The router's fault draws replicate the par wire schedule: same
    /// seed/wire → same retransmit/duplicate counts as a local par run of
    /// an identical single-wire topology.
    #[test]
    fn router_fault_draws_match_par_wire_schedule() {
        let seed = 77u64;
        let sends = 400i64;
        // Local par reference: one faulty wire, count faults.
        let mut pb = ParBuilder::new(seed).with_workers(1);
        let sink = CollectorSink::new();
        let src = pb.add_instance(echo());
        let dst = pb.add_instance(Box::new(sink.clone()));
        pb.connect_with(
            src,
            PortId(0),
            dst,
            PortId(0),
            ChannelConfig::lan().with_loss(0.2).with_duplicates(0.15),
        );
        for i in 0..sends {
            pb.inject(0, src, PortId(0), Message::data([i]));
        }
        let stats = pb.build().run();

        // Router-style draws over the same wire id 0, same seed, same
        // send count: the schedule must agree exactly.
        let mut rng = StdRng::seed_from_u64(seed ^ 1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (mut retransmits, mut duplicates) = (0u64, 0u64);
        for _ in 0..sends {
            if rng.random::<f64>() < 0.2 {
                retransmits += 1;
            }
            if rng.random::<f64>() < 0.15 {
                duplicates += 1;
            }
        }
        assert_eq!(retransmits, stats.retransmits, "loss schedule identical");
        assert_eq!(duplicates, stats.duplicates, "dup schedule identical");
        assert_eq!(sink.len() as u64, sends as u64 + stats.duplicates);
    }
}
