//! The distributed multi-process backend: a topology partitioned across
//! OS processes over a real byte boundary.
//!
//! Where [`crate::par`] runs a topology on threads inside one address
//! space, this backend forks *worker processes* and ships each one its
//! partition of the graph. Inside every worker the lock-free parallel
//! runtime does the actual execution; what this module adds is the
//! boundary between them — Unix-domain sockets carrying length-prefixed
//! frames ([`wire`]) — and a coordinator (the *parent*) that routes every
//! cross-partition message.
//!
//! # SPMD assembly
//!
//! There is no plan serializer for arbitrary component graphs (components
//! are closures over arbitrary state). Instead, topologies are *named*:
//! a [`Registry`] maps a topology name to a deterministic assembly
//! function `fn(&mut dyn ExecutorBuilder, params) -> sinks`. The parent
//! ships each worker a tiny framed plan — name, parameter string, seed,
//! process count, its own index — and every process (parent included)
//! runs the *identical* assembly. Because assembly is deterministic, all
//! processes agree on the global numbering of instances, channels and
//! wires without ever serializing a component. Instance `i` is *owned* by
//! process `i % processes`; a worker materializes only its own instances
//! (through [`DistWorkerBuilder`], which translates global ids to local
//! [`crate::par::ParBuilder`] ids), while the parent assembles into a
//! [`ProbeBuilder`] that records pure structure.
//!
//! Coordination injection composes untouched: `blazes-autocoord`'s
//! rewrite pass runs *inside* the assembly function, below the
//! [`ExecutorBuilder`] surface, so the rewritten graph — gates and all —
//! is what gets numbered and partitioned, identically everywhere.
//!
//! # Routing and fault injection on the wire
//!
//! Workers connect only to the parent (a star). A wire whose producer and
//! consumer are owned by the same process stays entirely local — the par
//! runtime delivers it, fault RNG and all. A *cross* wire is split: the
//! producer is wired to an egress shim that forwards
//! `(wire, seq, message)` to the parent, the parent applies the wire's
//! fault schedule and routes the frame to the consumer's owner, and the
//! consumer's owner injects it through [`crate::par::RunningPar::inject`].
//!
//! Fault injection therefore moves to the actual byte boundary, but the
//! *schedule* is unchanged: the parent seeds one RNG per cross wire with
//! the exact formula and per-send draw order the par backend uses for
//! local wires. A wire's loss/duplication schedule is a function of its
//! global wire number and send ordinal only — identical whether the wire
//! happens to be local or cross, which is what makes digests reproducible
//! across `{1,2,4}` processes and against the single-process backends.
//! Two extra fault classes exist only at frame granularity (so they
//! perturb timing, never per-wire FIFO): probabilistic *reordering* of
//! frames on different wires, and counter-scheduled *partition windows*
//! that buffer traffic and release it in arrival order.
//!
//! # Termination and collection
//!
//! A worker reports `Idle{sent, recv}` whenever its local runtime has
//! quiesced ([`crate::par::RunningPar::settled`]) and its egress queue
//! has drained. The parent declares stability when every worker's latest
//! report matches the parent's own per-worker frame counters and no
//! frames are held in the reorder/partition buffers — any frame still in
//! flight in either direction makes some counter pair disagree. A
//! `Probe`/`ProbeAck` confirmation round then re-validates before the
//! parent collects: `Collect` makes each worker finish its run (running
//! the end-of-run speculation rescue, if any) and stream back the
//! contents of every sink it owns plus its run statistics.
//!
//! One documented divergence from the single-process backends: egress
//! traffic produced *by* the end-of-run rescue drain (a never-sealed
//! speculative session re-emitting blocking output after `Collect`) can
//! no longer cross the wire; such frames are dropped and counted in
//! [`DistStats::late_egress_frames`]. Coordinated topologies whose seals
//! all arrive — everything the differential suite runs — never hit this.
//!
//! # Fault tolerance
//!
//! The crash model is *fail-stop during routing*: a worker process may be
//! SIGKILL'd (or die any other way) at any point of phase 1, and the run
//! still completes with the same sinks. Three mechanisms compose:
//!
//! * **Liveness.** Workers send [`wire::Frame::Heartbeat`] every
//!   [`DistTuning::heartbeat_every`]; the coordinator keeps per-worker
//!   deadlines, reaps child exits promptly, and converts every failure
//!   into a forensic [`DistError::WorkerFailed`] verdict instead of the
//!   old global stall timeout. Heartbeats also double as idle
//!   keepalives, so a lost `Idle` frame self-heals on the next beat —
//!   which is what fixed the historical 1-core "run stalled" flake.
//! * **Recovery.** The coordinator logs the exact post-fault byte stream
//!   it ships to each worker ([`recover::ReplayLog`]) and, on death,
//!   respawns the worker (bounded exponential backoff, respawn budget)
//!   with a bumped *epoch*; the fresh incarnation re-runs the identical
//!   SPMD assembly and is rehydrated by replaying the log verbatim.
//!   Output the dead incarnation had already delivered is suppressed on
//!   its way back: per-wire sequence numbers catch reconnect resends,
//!   and a content-multiset filter ([`recover::ReplayDedup`]) catches
//!   recomputed frames whose interleaving permuted. Workers dually keep
//!   an egress log trimmed by coordinator [`wire::Frame::Ack`]s, so
//!   replay is exactly-once at the tuple level in both directions.
//! * **Chaos.** [`ChaosSpec`] schedules seeded SIGKILLs (after N
//!   heartbeats or N routed frames) so the differential suite can prove
//!   digests bit-identical with and without crashes.
//!
//! The guarantee is deliberately CALM-shaped: replay restores the
//! *multiset* of cross-partition messages, so confluent and coordinated
//! topologies recover bit-identically, while an *uncoordinated*
//! order-sensitive topology may still diverge under crashes — the same
//! separation the paper draws for message-level disorder. Crashes during
//! phase 2 (collection) are fatal: sink contents live only in their
//! owning worker, and recomputing them mid-collection could tear the
//! result set.

pub mod recover;
pub mod wire;

use crate::backend::{ChannelId, ExecutorBuilder, PortId};
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::par::ParBuilder;
use crate::sim::{InstanceId, Time};
use crate::sinks::CollectorSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
pub use recover::{ChaosSpec, DistTuning, FailureCause, Kill, KillPoint, Transport};
use recover::{EgressLog, ReplayDedup, ReplayLog, SeqLedger, SeqVerdict};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use wire::{Frame, FrameDecoder};

/// Environment variable carrying the parent's endpoint to a worker: a
/// Unix socket path, or `tcp:ADDR` for the TCP transport.
pub const ENV_PARENT: &str = "BLAZES_DIST_PARENT";
/// Environment variable carrying a worker's process index.
pub const ENV_INDEX: &str = "BLAZES_DIST_INDEX";
/// Environment variable carrying a worker's incarnation epoch (0 for the
/// original spawn; bumped on every respawn).
pub const ENV_EPOCH: &str = "BLAZES_DIST_EPOCH";

/// Wire numbers for the local producer→egress hops, far above any global
/// wire number. Egress hops use [`ChannelConfig::instant`] (no fault
/// RNG), so the offset only keeps diagnostics unambiguous.
const EGRESS_WIRE_BASE: u64 = 1 << 48;

/// Mixing constant for the *reorder* RNG stream of a cross wire —
/// deliberately different from the loss/duplication stream's constant so
/// enabling reordering never perturbs the at-least-once schedule.
const REORDER_MIX: u64 = 0xd1b5_4a32_d192_ed03;

/// Which process owns global instance `instance` in an
/// `processes`-process run.
#[must_use]
pub fn owner(instance: usize, processes: usize) -> usize {
    instance % processes
}

/// One cross-partition emission leaving a worker: `(wire, seq, message)`.
pub type EgressFrame = (u64, u64, Message);

/// Sinks returned by a registered assembly, with the *global* instance id
/// each sink was added as (ownership of the results follows from it).
pub type SinkSet = Vec<(InstanceId, CollectorSink)>;

/// A deterministic topology assembly: given any backend builder and a
/// parameter string, build the graph and return its sinks. Must be a pure
/// function of the parameter string — every process replays it.
pub type AssembleFn = Box<dyn Fn(&mut dyn ExecutorBuilder, &str) -> SinkSet + Send + Sync>;

/// Named topologies the distributed backend can instantiate. The parent
/// ships only a name + parameter string; both sides must hold the same
/// registry.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, AssembleFn>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `assemble` under `name` (replacing any previous entry).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        assemble: impl Fn(&mut dyn ExecutorBuilder, &str) -> SinkSet + Send + Sync + 'static,
    ) {
        self.entries.insert(name.into(), Box::new(assemble));
    }

    /// Run the assembly registered under `topology` against `builder`.
    ///
    /// # Errors
    /// [`DistError::UnknownTopology`] if nothing is registered under
    /// `topology`.
    pub fn assemble(
        &self,
        topology: &str,
        params: &str,
        builder: &mut dyn ExecutorBuilder,
    ) -> Result<SinkSet, DistError> {
        let f = self
            .entries
            .get(topology)
            .ok_or_else(|| DistError::UnknownTopology(topology.to_string()))?;
        Ok(f(builder, params))
    }

    /// Registered topology names.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }
}

/// Everything a distributed run needs to know, parent side.
#[derive(Debug, Clone)]
pub struct DistSpec {
    /// Registered topology name.
    pub topology: String,
    /// Parameter string handed to the assembly function verbatim.
    pub params: String,
    /// Fault/run seed, shared by every process.
    pub seed: u64,
    /// Worker process count.
    pub processes: usize,
    /// Par-runtime worker threads per process.
    pub workers_per_process: usize,
    /// Scheduler of the in-process runtime (`false` = static sharding).
    pub stealing: bool,
    /// Enable time-warp speculation inside each process.
    pub speculation: bool,
    /// Per cross-wire probability that a frame is held and delivered
    /// after the next frame bound for the same process (frames of the
    /// *same* wire are never swapped — per-wire FIFO is load-bearing).
    pub reorder_prob: f64,
    /// Counter-scheduled partition: every `every` routed frames, buffer
    /// the next `len` frames and release them in arrival order.
    pub partition: Option<(u64, u64)>,
    /// Worker process argv. The command re-enters this program (or any
    /// program holding the same registry) such that it reaches
    /// [`worker_main`]; see [`libtest_worker_command`] for test binaries.
    pub worker_command: Vec<String>,
    /// Supervision + recovery knobs (transport, heartbeats, respawn
    /// budget).
    pub tuning: DistTuning,
    /// Seeded crash schedule for chaos runs (empty = no crashes).
    pub chaos: ChaosSpec,
}

impl DistSpec {
    /// A spec with library defaults: 2 processes × 2 workers, stealing
    /// scheduler, no speculation, no frame-level faults.
    #[must_use]
    pub fn new(
        topology: impl Into<String>,
        params: impl Into<String>,
        worker_command: Vec<String>,
    ) -> Self {
        DistSpec {
            topology: topology.into(),
            params: params.into(),
            seed: 0,
            processes: 2,
            workers_per_process: 2,
            stealing: true,
            speculation: false,
            reorder_prob: 0.0,
            partition: None,
            worker_command,
            tuning: DistTuning::default(),
            chaos: ChaosSpec::none(),
        }
    }
}

/// Worker argv for a libtest binary: re-run the current executable,
/// selecting exactly the (`#[ignore]`d) test named `entry_test`, whose
/// body calls [`worker_main`]. The test returns immediately when
/// [`ENV_PARENT`] is unset, so the entry is inert in normal test runs.
///
/// # Panics
/// If the current executable path cannot be determined.
#[must_use]
pub fn libtest_worker_command(entry_test: &str) -> Vec<String> {
    let exe = std::env::current_exe()
        .expect("current_exe for dist worker spawn")
        .to_string_lossy()
        .into_owned();
    vec![
        exe,
        entry_test.to_string(),
        "--exact".to_string(),
        "--include-ignored".to_string(),
    ]
}

/// Errors of a distributed run.
#[derive(Debug)]
pub enum DistError {
    /// Socket / process I/O failed.
    Io(std::io::Error),
    /// A frame failed to decode.
    Wire(wire::WireError),
    /// The topology name is not in the registry.
    UnknownTopology(String),
    /// A worker failed and the run could not (or was not allowed to)
    /// recover it: the cause is non-recoverable, recovery is disabled, or
    /// the respawn budget ran out.
    WorkerFailed {
        /// Process index of the failing worker.
        worker: usize,
        /// Forensic verdict: how it died.
        cause: FailureCause,
    },
    /// The coordination protocol was violated or stalled.
    Protocol(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist i/o error: {e}"),
            DistError::Wire(e) => write!(f, "dist wire error: {e}"),
            DistError::UnknownTopology(t) => write!(f, "unknown dist topology {t:?}"),
            DistError::WorkerFailed { worker, cause } => {
                write!(f, "dist worker {worker} failed: {cause}")
            }
            DistError::Protocol(m) => write!(f, "dist protocol error: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<wire::WireError> for DistError {
    fn from(e: wire::WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Statistics of a distributed run: the parent's routing ledger plus the
/// sum of every worker's in-process runtime counters.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Worker process count.
    pub processes: usize,
    /// Cross-partition data frames the parent routed (duplicates
    /// included).
    pub frames_routed: u64,
    /// Retransmits drawn on cross wires by the parent's fault RNGs.
    pub wire_retransmits: u64,
    /// Duplicates drawn on cross wires by the parent's fault RNGs.
    pub wire_duplicates: u64,
    /// Frames delivered out of arrival order by the reorder fault.
    pub reordered_frames: u64,
    /// Partition windows opened by the counter schedule.
    pub partition_windows: u64,
    /// `Probe`/`ProbeAck` confirmation rounds the parent ran.
    pub probe_rounds: u64,
    /// Events processed, summed over every worker's runtime.
    pub events_processed: u64,
    /// Messages delivered on *local* wires, summed over workers.
    pub messages_delivered: u64,
    /// Duplicates drawn on local wires, summed over workers.
    pub duplicates: u64,
    /// Retransmits drawn on local wires, summed over workers.
    pub retransmits: u64,
    /// End-of-run rescue passes, summed over workers.
    pub rescue_passes: u64,
    /// Egress frames produced after `Collect` (rescue-drain output that
    /// could no longer cross the wire) — see the module docs.
    pub late_egress_frames: u64,
    /// Heartbeat frames the coordinator received.
    pub heartbeats: u64,
    /// Worker failures the coordinator detected (recovered or not).
    pub worker_failures: u64,
    /// Worker processes respawned after a failure.
    pub respawns: u64,
    /// Frames replayed from coordinator logs into (re)connected workers.
    pub replayed_frames: u64,
    /// Worker→coordinator frames suppressed as replay duplicates (by
    /// sequence or by content).
    pub deduped_frames: u64,
}

impl DistStats {
    /// Publish this run's routing ledger into a metrics registry under
    /// `dist.*` names. Call once per completed run.
    pub fn export_metrics(&self, reg: &blazes_obs::Registry) {
        reg.gauge("dist.processes").set(self.processes as i64);
        reg.counter("dist.frames.sent").add(self.frames_routed);
        reg.counter("dist.frames.retransmits")
            .add(self.wire_retransmits);
        reg.counter("dist.frames.duplicates")
            .add(self.wire_duplicates);
        reg.counter("dist.frames.reordered")
            .add(self.reordered_frames);
        reg.counter("dist.partition_windows")
            .add(self.partition_windows);
        reg.counter("dist.probe_rounds").add(self.probe_rounds);
        reg.counter("dist.heartbeats").add(self.heartbeats);
        reg.counter("dist.worker_failures")
            .add(self.worker_failures);
        reg.counter("dist.respawns").add(self.respawns);
        reg.counter("dist.replayed_frames")
            .add(self.replayed_frames);
        reg.counter("dist.deduped_frames").add(self.deduped_frames);
        reg.counter("dist.events").add(self.events_processed);
        reg.counter("dist.deliveries").add(self.messages_delivered);
        reg.counter("dist.late_egress_frames")
            .add(self.late_egress_frames);
    }
}

/// Result of [`run_dist`]: the topology's sinks — filled with the entries
/// streamed back from their owning workers, in each sink's arrival order
/// — and the run's statistics.
#[derive(Debug)]
pub struct DistRun {
    /// The assembly's sinks, keyed by global instance id.
    pub sinks: SinkSet,
    /// Routing + aggregated worker statistics.
    pub stats: DistStats,
}

// ---------------------------------------------------------------------
// Structure probe (parent-side assembly)
// ---------------------------------------------------------------------

/// One wire recorded by a [`ProbeBuilder`], in global numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeWire {
    /// Producer instance (global id).
    pub from: usize,
    /// Producer output port.
    pub out_port: usize,
    /// Consumer instance (global id).
    pub to: usize,
    /// Consumer input port.
    pub in_port: usize,
    /// Channel handle the wire was connected over.
    pub channel: usize,
}

/// An [`ExecutorBuilder`] that executes nothing: it records the pure
/// structure of an assembly — instance count and names, channel configs,
/// wires in global numbering, injection count. The parent runs the SPMD
/// assembly through it to learn the routing table; it is also handy for
/// asserting what a rewrite pass did to a graph without running it.
#[derive(Debug, Default)]
pub struct ProbeBuilder {
    names: Vec<String>,
    channels: Vec<ChannelConfig>,
    wires: Vec<ProbeWire>,
    injections: usize,
}

impl ProbeBuilder {
    /// A fresh probe.
    #[must_use]
    pub fn new() -> Self {
        ProbeBuilder::default()
    }

    /// Number of instances the assembly added.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.names.len()
    }

    /// Component names in instance order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Registered channel configurations, by handle.
    #[must_use]
    pub fn channels(&self) -> &[ChannelConfig] {
        &self.channels
    }

    /// Recorded wires; a wire's global number is its index here.
    #[must_use]
    pub fn wires(&self) -> &[ProbeWire] {
        &self.wires
    }

    /// Number of external injections the assembly made.
    #[must_use]
    pub fn injections(&self) -> usize {
        self.injections
    }
}

impl ExecutorBuilder for ProbeBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        self.names.push(component.name().to_string());
        InstanceId(self.names.len() - 1)
    }

    fn set_service_time(&mut self, _id: InstanceId, _service: Time) {}

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        self.channels.push(cfg);
        ChannelId(self.channels.len() - 1)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        self.wires.push(ProbeWire {
            from: from.0,
            out_port: out_port.0,
            to: to.0,
            in_port: in_port.0,
            channel: channel.0,
        });
    }

    fn inject(&mut self, _at: Time, _to: InstanceId, _port: PortId, _msg: Message) {
        self.injections += 1;
    }
}

// ---------------------------------------------------------------------
// Worker-side builder
// ---------------------------------------------------------------------

/// The egress shim interposed on a cross wire's producer side: forwards
/// every delivery to the worker's socket pump as `(wire, seq, message)`.
///
/// Deliberately offers no snapshot: in time-warp mode the runtime then
/// *defers* speculative deliveries to the egress until their epoch
/// resolves, so only committed traffic ever crosses a process boundary —
/// speculation stays process-local by construction.
struct Egress {
    wire: u64,
    seq: u64,
    queued: Arc<AtomicU64>,
    tx: mpsc::Sender<EgressFrame>,
}

impl Component for Egress {
    fn on_message(&mut self, _port: usize, msg: Message, _ctx: &mut Context) {
        // Count before sending: the idle check compares this counter
        // against the pump's written counter, and over-counting is the
        // safe direction (a frame in the channel reads as "not drained").
        self.queued.fetch_add(1, Ordering::SeqCst);
        let seq = self.seq;
        self.seq += 1;
        let _ = self.tx.send((self.wire, seq, msg));
    }

    fn name(&self) -> &str {
        "dist-egress"
    }
}

/// The cross-partition wiring a [`DistWorkerBuilder`] accumulated.
#[derive(Debug)]
pub struct DistWiring {
    /// Cross wires terminating locally: global wire → (local instance of
    /// the consumer, its input port).
    pub ingress: BTreeMap<u64, (InstanceId, PortId)>,
    /// Global wire numbers of cross wires originating locally.
    pub cross_out: Vec<u64>,
    /// Total instances in the global numbering (local and remote).
    pub instances: usize,
}

/// An [`ExecutorBuilder`] over a [`ParBuilder`] that realizes one
/// process's partition of an SPMD assembly.
///
/// Every process runs the identical assembly through one of these; the
/// builder hands out *global* instance/channel ids (so the assembly sees
/// the same ids everywhere) while materializing only what process
/// `index` owns. Wires between two local instances are connected with
/// their global wire number ([`ParBuilder`]'s fault streams key on it);
/// wires leaving the partition get an egress shim; wires entering it
/// are recorded in the ingress table for [`RunningPar::inject`] delivery.
pub struct DistWorkerBuilder<'a> {
    inner: &'a mut ParBuilder,
    index: usize,
    processes: usize,
    /// Global instance id → local par id (`None` = owned elsewhere).
    local_of: Vec<Option<InstanceId>>,
    /// Global channel id → local par channel id.
    local_channel: Vec<ChannelId>,
    next_wire: u64,
    egress_channel: Option<ChannelId>,
    egress_queued: Arc<AtomicU64>,
    egress_tx: mpsc::Sender<EgressFrame>,
    ingress: BTreeMap<u64, (InstanceId, PortId)>,
    cross_out: Vec<u64>,
}

impl<'a> DistWorkerBuilder<'a> {
    /// Wrap `inner` as process `index` of `processes`. Returns the
    /// builder, the receiving end of its egress queue, and the shared
    /// egress-enqueue counter (compare against frames actually written to
    /// decide the queue has drained).
    ///
    /// # Panics
    /// If `processes` is zero or `index` is out of range.
    #[must_use]
    pub fn new(
        inner: &'a mut ParBuilder,
        index: usize,
        processes: usize,
    ) -> (Self, mpsc::Receiver<EgressFrame>, Arc<AtomicU64>) {
        assert!(processes >= 1, "at least one process");
        assert!(index < processes, "index within process count");
        let (tx, rx) = mpsc::channel();
        let queued = Arc::new(AtomicU64::new(0));
        (
            DistWorkerBuilder {
                inner,
                index,
                processes,
                local_of: Vec::new(),
                local_channel: Vec::new(),
                next_wire: 0,
                egress_channel: None,
                egress_queued: Arc::clone(&queued),
                egress_tx: tx,
                ingress: BTreeMap::new(),
                cross_out: Vec::new(),
            },
            rx,
            queued,
        )
    }

    /// Local par id of global instance `id`, if owned here.
    #[must_use]
    pub fn local_of(&self, id: InstanceId) -> Option<InstanceId> {
        self.local_of.get(id.0).copied().flatten()
    }

    /// Consume the builder, returning the accumulated cross wiring.
    #[must_use]
    pub fn finish(self) -> DistWiring {
        DistWiring {
            ingress: self.ingress,
            cross_out: self.cross_out,
            instances: self.local_of.len(),
        }
    }
}

impl ExecutorBuilder for DistWorkerBuilder<'_> {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let global = self.local_of.len();
        let local = (owner(global, self.processes) == self.index)
            .then(|| self.inner.add_instance(component));
        self.local_of.push(local);
        InstanceId(global)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        if let Some(local) = self.local_of[id.0] {
            self.inner.set_service_time(local, service);
        }
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        let local = self.inner.add_channel(cfg);
        self.local_channel.push(local);
        ChannelId(self.local_channel.len() - 1)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        let wire = self.next_wire;
        self.next_wire += 1;
        match (self.local_of[from.0], self.local_of[to.0]) {
            (Some(f), Some(t)) => {
                self.inner.connect_numbered(
                    f,
                    out_port,
                    t,
                    in_port,
                    self.local_channel[channel.0],
                    wire,
                );
            }
            (Some(f), None) => {
                let shim = self.inner.add_instance(Box::new(Egress {
                    wire,
                    seq: 0,
                    queued: Arc::clone(&self.egress_queued),
                    tx: self.egress_tx.clone(),
                }));
                let inner = &mut *self.inner;
                let ch = *self
                    .egress_channel
                    .get_or_insert_with(|| inner.add_channel(ChannelConfig::instant()));
                self.inner.connect_numbered(
                    f,
                    out_port,
                    shim,
                    PortId(0),
                    ch,
                    EGRESS_WIRE_BASE + wire,
                );
                self.cross_out.push(wire);
            }
            (None, Some(t)) => {
                self.ingress.insert(wire, (t, in_port));
            }
            (None, None) => {}
        }
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        if let Some(local) = self.local_of[to.0] {
            self.inner.inject(at, local, port, msg);
        }
    }
}

// ---------------------------------------------------------------------
// Parent: routing with wire faults
// ---------------------------------------------------------------------

/// Parent-side state of one cross wire.
struct WireRoute {
    /// Owner of the consumer — where frames of this wire go.
    dest: usize,
    loss_prob: f64,
    duplicate_prob: f64,
    /// Loss/duplication stream — the exact RNG a local [`ParBuilder`]
    /// wire would own, same seed formula, same per-send draw order.
    rng: Option<StdRng>,
    /// Independent stream for the reorder fault.
    reorder_rng: Option<StdRng>,
}

/// The parent's serial router: applies per-wire faults and the
/// frame-level reorder/partition perturbations, then writes frames to
/// the destination worker's socket. Serial on purpose — one thread owns
/// every draw, so fault schedules cannot race.
///
/// Sequence numbers on routed frames are the router's own *delivery
/// ordinals* (per wire, from 0), not the producer's egress numbers: a
/// respawned producer restarts its egress sequences and may permute its
/// re-emissions, but consumers must still see a contiguous per-wire
/// stream. Replay-suppressed frames consume neither an ordinal nor a
/// fault draw, so crash-free and crashed runs route byte-identically.
struct Router {
    routes: HashMap<u64, WireRoute>,
    writers: Vec<Option<Conn>>,
    sent_to: Vec<u64>,
    /// Everything ever written toward each worker, in write order — the
    /// exact post-fault stream, re-shipped verbatim on (re)connect.
    logs: Vec<ReplayLog>,
    /// Destinations whose socket write failed since the last sweep; the
    /// coordinator turns these into failure verdicts (the frames
    /// themselves are safe in the log).
    write_failed: Vec<bool>,
    /// Delivery ordinal per wire.
    route_seq: HashMap<u64, u64>,
    /// Reorder hold slot per destination process.
    held: Vec<Option<(u64, Vec<u8>)>>,
    reorder_prob: f64,
    partition: Option<(u64, u64)>,
    /// Frames emitted outside partition windows (drives the schedule).
    emitted: u64,
    /// Frames still to buffer in the currently open window.
    window_left: u64,
    window_buf: Vec<(usize, Vec<u8>)>,
    stats: DistStats,
}

impl Router {
    /// Route one `Data` frame arriving from a worker.
    fn route(&mut self, wire: u64, msg: &Message) -> Result<(), DistError> {
        let route = self
            .routes
            .get_mut(&wire)
            .ok_or_else(|| DistError::Protocol(format!("data frame for unknown wire {wire}")))?;
        let dest = route.dest;
        let seq = {
            let s = self.route_seq.entry(wire).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        let mut duplicate = false;
        if let Some(rng) = route.rng.as_mut() {
            // Mirror of the par backend's send path: loss first (counted
            // as a retransmit, still delivered — at-least-once), then
            // duplication, each draw taken only when its probability is
            // nonzero.
            if route.loss_prob > 0.0 && rng.random::<f64>() < route.loss_prob {
                self.stats.wire_retransmits += 1;
            }
            duplicate = route.duplicate_prob > 0.0 && rng.random::<f64>() < route.duplicate_prob;
        }
        let reorder = self.reorder_prob > 0.0
            && route
                .reorder_rng
                .as_mut()
                .is_some_and(|r| r.random::<f64>() < self.reorder_prob);
        let bytes = wire::encode(&Frame::Data {
            wire,
            seq,
            msg: msg.clone(),
        });
        if duplicate {
            self.stats.wire_duplicates += 1;
        }
        let copies = if duplicate { 2 } else { 1 };
        for copy in 0..copies {
            // Only the first copy may be held: a held duplicate would sit
            // *behind* its twin and re-swap back on flush.
            self.deliver(dest, wire, bytes.clone(), reorder && copy == 0)?;
        }
        Ok(())
    }

    /// Reorder layer: swap a held frame with the next frame for the same
    /// destination, unless both are on the same wire (per-wire FIFO).
    fn deliver(
        &mut self,
        dest: usize,
        wire_id: u64,
        bytes: Vec<u8>,
        hold: bool,
    ) -> Result<(), DistError> {
        if let Some((held_wire, held_bytes)) = self.held[dest].take() {
            if held_wire == wire_id {
                // Same wire follows: release in order, no swap.
                self.emit(dest, held_bytes)?;
                self.emit(dest, bytes)?;
            } else {
                self.stats.reordered_frames += 1;
                self.emit(dest, bytes)?;
                self.emit(dest, held_bytes)?;
            }
            return Ok(());
        }
        if hold {
            self.held[dest] = Some((wire_id, bytes));
            return Ok(());
        }
        self.emit(dest, bytes)
    }

    /// Partition layer + the actual socket write.
    fn emit(&mut self, dest: usize, bytes: Vec<u8>) -> Result<(), DistError> {
        if self.window_left > 0 {
            self.window_buf.push((dest, bytes));
            self.window_left -= 1;
            if self.window_left == 0 {
                // Heal: release the buffered window in arrival order.
                for (d, b) in std::mem::take(&mut self.window_buf) {
                    self.write(d, &b)?;
                }
            }
            return Ok(());
        }
        self.write(dest, &bytes)?;
        if let Some((every, len)) = self.partition {
            self.emitted += 1;
            if every > 0 && len > 0 && self.emitted.is_multiple_of(every) {
                self.window_left = len;
                self.stats.partition_windows += 1;
            }
        }
        Ok(())
    }

    /// Log one post-fault frame for `dest` and attempt the socket write.
    /// A failed (or absent) socket never loses the frame: it is in the
    /// log, and the (re)connect path replays the log tail. The failure
    /// is flagged for the supervisor instead of erroring, because a dead
    /// worker mid-run is recoverable.
    fn write(&mut self, dest: usize, bytes: &[u8]) -> Result<(), DistError> {
        self.logs[dest].append(bytes.to_vec());
        self.sent_to[dest] += 1;
        self.stats.frames_routed += 1;
        blazes_obs::record(
            blazes_obs::EventKind::FrameSend,
            dest as u64,
            self.sent_to[dest],
        );
        if let Some(writer) = self.writers[dest].as_mut() {
            if writer.write_all(bytes).is_err() {
                self.writers[dest] = None;
                self.write_failed[dest] = true;
            }
        }
        Ok(())
    }

    /// Release everything the fault layers are sitting on (traffic has
    /// paused; holding further would stall termination).
    fn flush(&mut self) -> Result<(), DistError> {
        for dest in 0..self.held.len() {
            if let Some((_, bytes)) = self.held[dest].take() {
                self.emit(dest, bytes)?;
            }
        }
        if !self.window_buf.is_empty() {
            self.window_left = 0;
            for (d, b) in std::mem::take(&mut self.window_buf) {
                self.write(d, &b)?;
            }
        }
        Ok(())
    }

    /// Nothing buffered in any fault layer?
    fn drained(&self) -> bool {
        self.window_buf.is_empty() && self.held.iter().all(Option::is_none)
    }

    /// Send a control frame to one worker (bypasses the fault layers and
    /// the replay log — faults and recovery model the data plane, not
    /// the coordinator's own protocol). A down worker is skipped; a
    /// failed write is flagged for the supervisor.
    fn control(&mut self, dest: usize, frame: &Frame) {
        if let Some(writer) = self.writers[dest].as_mut() {
            if writer.write_all(&wire::encode(frame)).is_err() {
                self.writers[dest] = None;
                self.write_failed[dest] = true;
            }
        }
    }
}

/// Removes the socket directory on drop (best effort).
struct TempDir(PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

/// The coordinator's listening socket, over either transport.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
        }
    }
}

/// One coordinator↔worker byte stream, over either transport.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Sockets accepted from a non-blocking listener may inherit the
    /// flag on some platforms; force blocking mode explicitly.
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(nb),
            Conn::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Dial a coordinator endpoint as formatted for [`ENV_PARENT`]: a Unix
/// socket path, or `tcp:ADDR`.
fn connect_parent(endpoint: &str) -> std::io::Result<Conn> {
    if let Some(addr) = endpoint.strip_prefix("tcp:") {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Conn::Tcp(s))
    } else {
        Ok(Conn::Unix(UnixStream::connect(endpoint)?))
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Coordinator-side state of one worker process. Kills the child on drop
/// so no code path can leak a worker.
struct WorkerSlot {
    child: Option<std::process::Child>,
    /// Incarnation number: 0 originally, bumped on every respawn.
    epoch: u32,
    /// Connection id of the live socket (0 = none) — the filter that
    /// keeps a dead incarnation's buffered frames from being attributed
    /// to its successor.
    conn: u64,
    /// Hello'd, planned and connected?
    up: bool,
    /// Spawned and awaiting its hello.
    awaiting_hello: bool,
    spawned_at: Instant,
    /// Last frame of any kind on the live connection (liveness clock).
    last_heard: Instant,
    /// Heartbeats received across all incarnations (chaos triggers key
    /// on this).
    heartbeats: u64,
    /// Respawns consumed against the budget.
    respawns: u32,
    /// When the scheduled respawn may fire (exponential backoff).
    backoff_until: Option<Instant>,
    /// Latest idle report of the live incarnation.
    idle: Option<(u64, u64)>,
    /// Name of the last frame received (stall forensics).
    last_frame: &'static str,
}

impl WorkerSlot {
    fn new() -> Self {
        WorkerSlot {
            child: None,
            epoch: 0,
            conn: 0,
            up: false,
            awaiting_hello: false,
            spawned_at: Instant::now(),
            last_heard: Instant::now(),
            heartbeats: 0,
            respawns: 0,
            backoff_until: None,
            idle: None,
            last_frame: "<none>",
        }
    }
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            if child.try_wait().ok().flatten().is_none() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Events fed to the coordinator's main loop by the accept thread and
/// the per-connection reader threads. Every event is tagged with the
/// connection id it arose on; the main loop drops events whose id does
/// not match the worker's live connection.
enum Event {
    /// A fresh connection completed its `Hello` handshake.
    Hello {
        index: usize,
        epoch: u32,
        resume_recv: u64,
        conn_id: u64,
        conn: Conn,
        /// Bytes the hello reader slurped past the handshake frame.
        leftover: Vec<u8>,
    },
    Frame(usize, u64, Frame),
    Decode(usize, u64, wire::WireError),
    Eof(usize, u64),
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// How long the coordinator tolerates zero protocol *progress* (fresh
/// data, idle reports, probe acks) before declaring the run stalled.
/// Heartbeats deliberately do not feed this clock — they answer "is the
/// worker alive?", not "is the run advancing?" — so a livelock among
/// healthy workers still trips it, now with a per-worker verdict.
const STALL_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a (re)spawned worker may take to complete its hello.
const HELLO_TIMEOUT: Duration = Duration::from_secs(30);

/// Minimum interval between supervision liveness sweeps (child reaping,
/// deadlines, pending respawns). Chaos triggers are checked every loop
/// iteration regardless.
const SUPERVISE_EVERY: Duration = Duration::from_millis(5);

/// Sets the shared stop flag on drop, so the accept thread winds down on
/// every exit path from [`run_dist`], including errors.
struct StopFlag(Arc<AtomicBool>);

impl Drop for StopFlag {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Accept-side thread: poll the listener and, for each connection, read
/// its `Hello` on a helper thread (so one wedged dialer cannot block
/// later connections) before handing it to the main loop.
fn accept_loop(
    listener: &Listener,
    stop: &AtomicBool,
    conn_seq: &AtomicU64,
    tx: &mpsc::Sender<Event>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                let conn_id = conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut conn = conn;
                    if conn.set_nonblocking(false).is_err()
                        || conn.set_read_timeout(Some(HELLO_TIMEOUT)).is_err()
                    {
                        return;
                    }
                    if let Ok((index, epoch, resume_recv, leftover)) = read_hello(&mut conn) {
                        let _ = conn.set_read_timeout(None);
                        let _ = tx.send(Event::Hello {
                            index: index as usize,
                            epoch,
                            resume_recv,
                            conn_id,
                            conn,
                            leftover,
                        });
                    }
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The coordinator: owns the router, the per-worker slots, and the
/// ingest-side dedup state, and drives supervision + recovery.
struct Coordinator<'a> {
    spec: &'a DistSpec,
    processes: usize,
    endpoint: String,
    trace: bool,
    router: Router,
    slots: Vec<WorkerSlot>,
    /// Cross-process wires originating at each worker — the wires whose
    /// egress that worker produces, and whose ingest filters must reset
    /// when it respawns.
    origin_wires: Vec<Vec<u64>>,
    /// Ingest dedup, layer 1: per-wire producer egress sequencing.
    /// Catches byte-identical reconnect resends.
    seq: SeqLedger,
    /// Ingest dedup, layer 2: content multisets armed at respawn.
    /// Catches recomputed frames whose emission order permuted.
    dedup: ReplayDedup,
    /// Content hashes admitted per wire, in admission order — the data
    /// that arms `dedup` when the wire's producer respawns.
    routed_hashes: HashMap<u64, Vec<u64>>,
    /// Seq-fresh frames received per worker: the coordinator-side mirror
    /// of each worker's `sent` counter.
    recv_from: Vec<u64>,
    tx: mpsc::Sender<Event>,
    readers: Vec<std::thread::JoinHandle<()>>,
    chaos_fired: Vec<bool>,
    probe_nonce: u64,
    acks: Vec<Option<bool>>,
    awaiting_probe: bool,
    /// Protocol-progress clock: fresh data, idle reports, probe acks and
    /// hellos feed it. Heartbeats deliberately do not — they answer "is
    /// the worker alive?", not "is the run advancing?".
    last_progress: Instant,
    last_sweep: Instant,
    phase_start: Instant,
}

impl Coordinator<'_> {
    /// Spawn (or respawn) worker `i` at its slot's current epoch.
    fn spawn_worker(&mut self, i: usize) -> Result<(), DistError> {
        let epoch = self.slots[i].epoch;
        let child = std::process::Command::new(&self.spec.worker_command[0])
            .args(&self.spec.worker_command[1..])
            .env(ENV_PARENT, &self.endpoint)
            .env(ENV_INDEX, i.to_string())
            .env(ENV_EPOCH, epoch.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| DistError::WorkerFailed {
                worker: i,
                cause: FailureCause::SpawnFailed(e.to_string()),
            })?;
        let slot = &mut self.slots[i];
        slot.child = Some(child);
        slot.awaiting_hello = true;
        slot.spawned_at = Instant::now();
        slot.backoff_until = None;
        if epoch > 0 {
            self.router.stats.respawns += 1;
            blazes_obs::record(blazes_obs::EventKind::Respawn, i as u64, u64::from(epoch));
        }
        Ok(())
    }

    /// Fire any chaos kills whose trigger condition now holds. SIGKILL,
    /// so the victim gets no chance to flush or clean up. The death is
    /// declared via [`Self::worker_down`] in the same call: if the kill
    /// only signalled and left discovery to the liveness sweep, the
    /// stability protocol could converge on the victim's stale idle
    /// report and phase 2 could begin while it dies — and phase-2
    /// deaths are fatal by design.
    fn fire_chaos(&mut self) -> Result<(), DistError> {
        for k in 0..self.spec.chaos.kills.len() {
            if self.chaos_fired[k] {
                continue;
            }
            let kill = self.spec.chaos.kills[k];
            if kill.worker >= self.processes {
                self.chaos_fired[k] = true;
                continue;
            }
            let due = match kill.point {
                KillPoint::RoutedFrames(n) => self.router.sent_to[kill.worker] >= n,
                KillPoint::Heartbeats(n) => self.slots[kill.worker].heartbeats >= n,
                KillPoint::AfterMillis(ms) => {
                    self.phase_start.elapsed() >= Duration::from_millis(ms)
                }
            };
            if !due {
                continue;
            }
            self.chaos_fired[k] = true;
            self.worker_down(kill.worker, FailureCause::Exited(None))?;
        }
        Ok(())
    }

    /// One supervision pass: chaos triggers every call; liveness sweeps
    /// (child reaping, hello/heartbeat deadlines, pending respawns)
    /// throttled to [`SUPERVISE_EVERY`].
    fn supervise(&mut self) -> Result<(), DistError> {
        self.fire_chaos()?;
        if self.last_sweep.elapsed() < SUPERVISE_EVERY {
            return Ok(());
        }
        self.last_sweep = Instant::now();
        self.sweep_write_failures()?;
        for i in 0..self.processes {
            // Reap exits first — the cheapest and most decisive signal.
            let exited = self.slots[i]
                .child
                .as_mut()
                .and_then(|c| c.try_wait().ok().flatten());
            if let Some(status) = exited {
                self.worker_down(i, FailureCause::Exited(status.code()))?;
                continue;
            }
            if self.slots[i].awaiting_hello && self.slots[i].spawned_at.elapsed() > HELLO_TIMEOUT {
                self.worker_down(i, FailureCause::HelloTimeout)?;
                continue;
            }
            if self.slots[i].up
                && self.slots[i].last_heard.elapsed() > self.spec.tuning.worker_deadline
            {
                let ms = self.slots[i].last_heard.elapsed().as_millis() as u64;
                self.worker_down(i, FailureCause::HeartbeatTimeout(ms))?;
                continue;
            }
            if let Some(due) = self.slots[i].backoff_until {
                if Instant::now() >= due {
                    self.spawn_worker(i)?;
                }
            }
        }
        Ok(())
    }

    /// True when every worker incarnation is live: no pending respawn,
    /// no handshake in flight. Phase 1 may only end in this state.
    fn all_up(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.up && !s.awaiting_hello && s.backoff_until.is_none())
    }

    /// Convert flagged socket-write failures into failure verdicts.
    fn sweep_write_failures(&mut self) -> Result<(), DistError> {
        for i in 0..self.processes {
            if std::mem::take(&mut self.router.write_failed[i]) {
                self.worker_down(i, FailureCause::Eof)?;
            }
        }
        Ok(())
    }

    /// Declare worker `i` dead with `cause`: reap it, quarantine its
    /// connection, and either schedule a respawn or convert the cause
    /// into the run's failure verdict.
    fn worker_down(&mut self, i: usize, cause: FailureCause) -> Result<(), DistError> {
        {
            let slot = &mut self.slots[i];
            if slot.child.is_none() && !slot.up && !slot.awaiting_hello {
                return Ok(()); // already down, respawn scheduled
            }
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.up = false;
            slot.awaiting_hello = false;
            slot.conn = 0;
            slot.idle = None;
        }
        self.router.writers[i] = None;
        self.router.write_failed[i] = false;
        self.awaiting_probe = false;
        self.last_progress = Instant::now();
        self.router.stats.worker_failures += 1;
        let recoverable = self.spec.tuning.recovery
            && !matches!(cause, FailureCause::Reported(_) | FailureCause::Corrupt(_));
        if !recoverable {
            return Err(DistError::WorkerFailed { worker: i, cause });
        }
        let budget = self.spec.tuning.respawn_budget;
        let slot = &mut self.slots[i];
        if slot.respawns >= budget {
            return Err(DistError::WorkerFailed {
                worker: i,
                cause: FailureCause::BudgetExhausted {
                    respawns: slot.respawns,
                    last: Box::new(cause),
                },
            });
        }
        slot.backoff_until = Some(Instant::now() + self.spec.tuning.backoff_for(slot.respawns));
        slot.respawns += 1;
        slot.epoch += 1;
        Ok(())
    }

    /// Admit a completed hello: ship the plan (fresh incarnations only),
    /// replay the log tail, re-arm the ingest filters, and start a
    /// conn-tagged reader.
    fn on_hello(
        &mut self,
        index: usize,
        epoch: u32,
        resume_recv: u64,
        conn_id: u64,
        conn: Conn,
        leftover: Vec<u8>,
    ) -> Result<(), DistError> {
        if index >= self.processes {
            return Err(DistError::Protocol(format!("bad hello index {index}")));
        }
        let (slot_epoch, awaiting, up) = {
            let s = &self.slots[index];
            (s.epoch, s.awaiting_hello, s.up)
        };
        if epoch != slot_epoch || (!awaiting && !up) {
            // A stale incarnation (or an unsolicited dialer): drop it.
            return Ok(());
        }
        let reconnect = up;
        let Ok(mut writer) = conn.try_clone() else {
            return Ok(());
        };
        let mut io_ok = true;
        if !reconnect {
            io_ok = writer
                .write_all(&wire::encode(&Frame::Plan {
                    topology: self.spec.topology.clone(),
                    params: self.spec.params.clone(),
                    seed: self.spec.seed,
                    processes: self.processes as u32,
                    index: index as u32,
                    workers: self.spec.workers_per_process as u32,
                    stealing: self.spec.stealing,
                    speculation: self.spec.speculation,
                    trace: self.trace,
                    epoch,
                    heartbeat_ms: u32::try_from(self.spec.tuning.heartbeat_every.as_millis())
                        .unwrap_or(u32::MAX),
                }))
                .is_ok();
        }
        let mut replayed = 0u64;
        if io_ok {
            for bytes in self.router.logs[index].tail(resume_recv) {
                if writer.write_all(bytes).is_err() {
                    io_ok = false;
                    break;
                }
                replayed += 1;
            }
        }
        if !io_ok {
            // The incarnation died during its own handshake; the
            // supervisor will reap the corpse and schedule the next try.
            return Ok(());
        }
        if !reconnect {
            // A fresh incarnation restarts its egress from zero and will
            // re-emit everything it computes. Reset the sequence ledger
            // for its wires and arm the content filter with what those
            // wires already delivered, so re-emissions are swallowed.
            self.recv_from[index] = 0;
            for &w in &self.origin_wires[index] {
                self.dedup
                    .arm(w, self.routed_hashes.get(&w).map_or(&[][..], Vec::as_slice));
            }
            self.seq.reset_wires(&self.origin_wires[index]);
        }
        if replayed > 0 {
            self.router.stats.replayed_frames += replayed;
            blazes_obs::record(blazes_obs::EventKind::Replay, index as u64, replayed);
        }
        let slot = &mut self.slots[index];
        slot.up = true;
        slot.awaiting_hello = false;
        slot.conn = conn_id;
        slot.last_heard = Instant::now();
        slot.idle = None;
        self.router.writers[index] = Some(writer);
        self.last_progress = Instant::now();
        let tx = self.tx.clone();
        self.readers.push(std::thread::spawn(move || {
            reader_loop(index, conn_id, conn, leftover, &tx);
        }));
        Ok(())
    }

    /// Handle one phase-1 event. Returns `Ok(true)` once the stability
    /// protocol confirms global quiescence.
    fn handle_event(&mut self, event: Event) -> Result<bool, DistError> {
        match event {
            Event::Hello {
                index,
                epoch,
                resume_recv,
                conn_id,
                conn,
                leftover,
            } => {
                self.on_hello(index, epoch, resume_recv, conn_id, conn, leftover)?;
                Ok(false)
            }
            Event::Frame(i, conn_id, frame) => {
                if self.slots[i].conn != conn_id {
                    return Ok(false); // dead incarnation's buffered bytes
                }
                self.slots[i].last_frame = frame_name(&frame);
                self.slots[i].last_heard = Instant::now();
                self.on_frame(i, frame)
            }
            Event::Decode(i, conn_id, e) => {
                if self.slots[i].conn == conn_id {
                    self.worker_down(i, FailureCause::Corrupt(e.to_string()))?;
                }
                Ok(false)
            }
            Event::Eof(i, conn_id) => {
                if self.slots[i].conn == conn_id {
                    self.worker_down(i, FailureCause::Eof)?;
                }
                Ok(false)
            }
        }
    }

    /// Handle one phase-1 frame from live worker `i`.
    fn on_frame(&mut self, i: usize, frame: Frame) -> Result<bool, DistError> {
        match frame {
            Frame::Data { wire, seq, msg } => {
                blazes_obs::record(blazes_obs::EventKind::FrameRecv, wire, seq);
                match self.seq.accept(wire, seq) {
                    SeqVerdict::Duplicate => {
                        self.router.stats.deduped_frames += 1;
                    }
                    SeqVerdict::Gap { expected } => {
                        return Err(DistError::Protocol(format!(
                            "wire {wire} skipped from seq {expected} to {seq} at the coordinator"
                        )));
                    }
                    SeqVerdict::Fresh => {
                        self.recv_from[i] += 1;
                        self.slots[i].idle = None;
                        self.awaiting_probe = false;
                        self.last_progress = Instant::now();
                        let hash = recover::fnv1a(&wire::message_bytes(&msg));
                        if self.dedup.admit(wire, hash) {
                            self.routed_hashes.entry(wire).or_default().push(hash);
                            self.router.route(wire, &msg)?;
                        } else {
                            self.router.stats.deduped_frames += 1;
                        }
                    }
                }
                Ok(false)
            }
            Frame::Idle { sent, recv } => self.on_idle(i, sent, recv),
            Frame::Heartbeat {
                epoch,
                sent,
                recv,
                idle,
            } => {
                if epoch != self.slots[i].epoch {
                    return Ok(false);
                }
                self.slots[i].heartbeats += 1;
                self.router.stats.heartbeats += 1;
                let acks = self.acks_for(i);
                if !acks.is_empty() {
                    self.router.control(i, &Frame::Ack { acks });
                }
                if idle {
                    // Idle keepalive: a re-announcement of quiescence,
                    // healing a lost or raced `Idle` frame.
                    return self.on_idle(i, sent, recv);
                }
                self.slots[i].idle = None;
                Ok(false)
            }
            Frame::ProbeAck {
                nonce,
                sent,
                recv,
                idle,
            } => {
                // Deliberately not a `last_progress` refresh: failed probe
                // rounds repeat on every idle keepalive, and their acks
                // must not keep a livelocked run alive.
                if self.awaiting_probe && nonce == self.probe_nonce {
                    self.acks[i] =
                        Some(idle && sent == self.recv_from[i] && recv == self.router.sent_to[i]);
                    if self.acks.iter().all(|a| *a == Some(true)) {
                        return Ok(true); // confirmed stable
                    }
                    if self.acks.iter().all(Option::is_some) {
                        self.awaiting_probe = false; // retry on the next idle
                    }
                }
                Ok(false)
            }
            Frame::Error { message } => {
                self.worker_down(i, FailureCause::Reported(message))?;
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// Traffic paused at worker `i`: release anything the fault layers
    /// hold, then see whether the whole fleet has gone quiet.
    fn on_idle(&mut self, i: usize, sent: u64, recv: u64) -> Result<bool, DistError> {
        self.router.flush()?;
        // Only a *changed* idle report counts as progress: idle keepalive
        // heartbeats re-announce the same counters every interval, and
        // letting them refresh the stall clock would mask a stability
        // livelock forever.
        if self.slots[i].idle != Some((sent, recv)) {
            self.last_progress = Instant::now();
        }
        self.slots[i].idle = Some((sent, recv));
        let stable = self.slots.iter().all(|s| s.up)
            && self.router.drained()
            && (0..self.processes)
                .all(|w| self.slots[w].idle == Some((self.recv_from[w], self.router.sent_to[w])));
        if stable && !self.awaiting_probe {
            self.probe_nonce += 1;
            self.acks = vec![None; self.processes];
            self.awaiting_probe = true;
            self.router.stats.probe_rounds += 1;
            for w in 0..self.processes {
                self.router.control(
                    w,
                    &Frame::Probe {
                        nonce: self.probe_nonce,
                    },
                );
            }
        }
        Ok(false)
    }

    /// Cumulative ack vector for worker `i`'s origin wires: the highest
    /// egress sequence number the coordinator has accepted per wire.
    fn acks_for(&self, i: usize) -> Vec<(u64, u64)> {
        let mut acks: Vec<(u64, u64)> = self.origin_wires[i]
            .iter()
            .filter_map(|&w| self.seq.high(w).map(|h| (w, h)))
            .collect();
        acks.sort_unstable();
        acks
    }

    /// One-line diagnosis of a stalled run: dead/silent workers are a
    /// liveness bug; a fleet of heartbeating workers that never converges
    /// is a scheduling stall or protocol livelock.
    fn stall_verdict(&self) -> String {
        let silent: Vec<usize> = (0..self.processes)
            .filter(|&i| {
                !self.slots[i].up
                    || self.slots[i].last_heard.elapsed() > self.spec.tuning.heartbeat_every * 4
            })
            .collect();
        if silent.is_empty() {
            "run stalled: all workers alive and heartbeating, but the stability \
             counters never converged (scheduling stall or protocol livelock)"
                .to_string()
        } else {
            format!("run stalled: workers {silent:?} silent (dead or wedged)")
        }
    }

    /// Print the per-worker ledger to stderr before giving up on a
    /// stalled run — the difference between "flaked again" and a
    /// diagnosable interleaving in CI logs.
    fn dump_stall_forensics(&self) {
        eprintln!(
            "dist coordinator stalled after {}s without protocol progress; \
             awaiting_probe={} router_drained={}",
            STALL_TIMEOUT.as_secs(),
            self.awaiting_probe,
            self.router.drained()
        );
        for i in 0..self.processes {
            let s = &self.slots[i];
            let idle = s
                .idle
                .map_or("<none>".to_string(), |(a, b)| format!("sent={a} recv={b}"));
            let ack = match self.acks.get(i).copied().flatten() {
                None => "<pending>",
                Some(true) => "stable",
                Some(false) => "unstable",
            };
            eprintln!(
                "  worker {i}: epoch={} up={} respawns={} heartbeats={} heard={}ms-ago \
                 routed_to={} recv_from={} last_frame={} idle_report={idle} probe_ack={ack}",
                s.epoch,
                s.up,
                s.respawns,
                s.heartbeats,
                s.last_heard.elapsed().as_millis(),
                self.router.sent_to[i],
                self.recv_from[i],
                s.last_frame
            );
        }
    }
}

/// Execute `spec` across real worker processes and collect the sinks.
///
/// The parent probes the assembly for structure, binds a listening
/// socket (Unix by default, loopback TCP via
/// [`DistTuning::with_transport`]), spawns `spec.processes` workers with
/// [`ENV_PARENT`]/[`ENV_INDEX`]/[`ENV_EPOCH`] set, ships each its plan,
/// routes every cross-partition frame (applying the wire fault
/// schedule), and — once the stability protocol holds — collects sink
/// contents and statistics. Workers that die during routing are
/// respawned and rehydrated by deterministic replay (see the
/// module-level *Fault tolerance* notes); workers that die during
/// collection fail the run.
///
/// # Errors
/// Any I/O, decode, protocol or worker failure; see [`DistError`].
///
/// # Panics
/// If `spec.processes` or `spec.workers_per_process` is zero, or the
/// worker command is empty.
pub fn run_dist(spec: &DistSpec, registry: &Registry) -> Result<DistRun, DistError> {
    assert!(spec.processes >= 1, "at least one worker process");
    assert!(spec.workers_per_process >= 1, "at least one worker thread");
    assert!(!spec.worker_command.is_empty(), "empty worker command");
    let processes = spec.processes;

    // Learn the structure by running the SPMD assembly against a probe.
    let mut probe = ProbeBuilder::new();
    let sinks = registry.assemble(&spec.topology, &spec.params, &mut probe)?;

    let mut routes = HashMap::new();
    let mut origin_wires: Vec<Vec<u64>> = vec![Vec::new(); processes];
    for (wire_id, w) in probe.wires().iter().enumerate() {
        if owner(w.from, processes) == owner(w.to, processes) {
            continue;
        }
        let cfg = &probe.channels()[w.channel];
        let wire_id = wire_id as u64;
        origin_wires[owner(w.from, processes)].push(wire_id);
        let faulty = cfg.loss_prob > 0.0 || cfg.duplicate_prob > 0.0;
        routes.insert(
            wire_id,
            WireRoute {
                dest: owner(w.to, processes),
                loss_prob: cfg.loss_prob,
                duplicate_prob: cfg.duplicate_prob,
                rng: faulty.then(|| {
                    StdRng::seed_from_u64(
                        spec.seed ^ (wire_id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    )
                }),
                reorder_rng: (spec.reorder_prob > 0.0).then(|| {
                    StdRng::seed_from_u64(spec.seed ^ (wire_id + 1).wrapping_mul(REORDER_MIX))
                }),
            },
        );
    }

    // Bind the endpoint. Unix sockets live in a private temp dir that is
    // cleaned up whatever happens; TCP binds an ephemeral loopback port.
    let mut _dir_guard = None;
    let (listener, endpoint) = match spec.tuning.transport {
        Transport::Unix => {
            let dir = std::env::temp_dir().join(format!(
                "blazes-dist-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&dir)?;
            _dir_guard = Some(TempDir(dir.clone()));
            let sock = dir.join("coord.sock");
            let listener = UnixListener::bind(&sock)?;
            (
                Listener::Unix(listener),
                sock.to_string_lossy().into_owned(),
            )
        }
        Transport::Tcp => {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            (Listener::Tcp(listener), format!("tcp:{addr}"))
        }
    };
    listener.set_nonblocking(true)?;

    // Accept thread: hands completed hellos to the main loop. The stop
    // flag is set on every exit path by the drop guard.
    let trace = blazes_obs::enabled();
    let (tx, rx) = mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));
    let _stop_guard = StopFlag(Arc::clone(&stop));
    let conn_seq = Arc::new(AtomicU64::new(0));
    let accept_handle = {
        let stop = Arc::clone(&stop);
        let conn_seq = Arc::clone(&conn_seq);
        let tx = tx.clone();
        std::thread::spawn(move || accept_loop(&listener, &stop, &conn_seq, &tx))
    };

    let router = Router {
        routes,
        writers: (0..processes).map(|_| None).collect(),
        sent_to: vec![0; processes],
        logs: (0..processes).map(|_| ReplayLog::new()).collect(),
        write_failed: vec![false; processes],
        route_seq: HashMap::new(),
        held: (0..processes).map(|_| None).collect(),
        reorder_prob: spec.reorder_prob,
        partition: spec.partition,
        emitted: 0,
        window_left: 0,
        window_buf: Vec::new(),
        stats: DistStats {
            processes,
            ..DistStats::default()
        },
    };
    let mut coord = Coordinator {
        spec,
        processes,
        endpoint,
        trace,
        router,
        slots: (0..processes).map(|_| WorkerSlot::new()).collect(),
        origin_wires,
        seq: SeqLedger::new(),
        dedup: ReplayDedup::new(),
        routed_hashes: HashMap::new(),
        recv_from: vec![0; processes],
        tx,
        readers: Vec::new(),
        chaos_fired: vec![false; spec.chaos.kills.len()],
        probe_nonce: 0,
        acks: vec![None; processes],
        awaiting_probe: false,
        last_progress: Instant::now(),
        last_sweep: Instant::now(),
        phase_start: Instant::now(),
    };
    for i in 0..processes {
        coord.spawn_worker(i)?;
    }

    // Phase 1: route until the stability protocol confirms quiescence,
    // supervising liveness and firing chaos kills along the way.
    loop {
        coord.supervise()?;
        if coord.last_progress.elapsed() > STALL_TIMEOUT {
            coord.dump_stall_forensics();
            return Err(DistError::Protocol(coord.stall_verdict()));
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(event) => {
                if coord.handle_event(event)? {
                    // A chaos kill can become due on the very frame that
                    // completed stability. Give supervision one final pass
                    // and only leave phase 1 with every worker alive —
                    // phase-2 deaths are fatal by design.
                    coord.supervise()?;
                    if coord.all_up() {
                        break;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(DistError::Protocol("all readers gone".to_string()));
            }
        }
    }

    // Phase 2: collect sinks and stats. No chaos, no respawns — sink
    // contents live only in their owning worker, so a crash here is
    // fatal by design.
    for w in 0..processes {
        coord.router.control(w, &Frame::Collect);
    }
    let mut done = vec![false; processes];
    let collect_start = Instant::now();
    while !done.iter().all(|d| *d) {
        if collect_start.elapsed() > STALL_TIMEOUT {
            return Err(DistError::Protocol("stalled during collection".to_string()));
        }
        let event = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(DistError::Protocol("all readers gone".to_string()));
            }
        };
        match event {
            // A straggler connection (e.g. a worker-side reconnect that
            // lost its race): nothing to collect from it.
            Event::Hello { .. } => {}
            Event::Frame(i, conn_id, frame) => {
                if coord.slots[i].conn != conn_id {
                    continue;
                }
                match frame {
                    Frame::SinkResult { sink, entries } => {
                        let (_, handle) = sinks
                            .get(sink as usize)
                            .ok_or_else(|| DistError::Protocol(format!("unknown sink {sink}")))?;
                        handle.extend(entries);
                    }
                    Frame::Done {
                        events,
                        delivered,
                        duplicates,
                        retransmits,
                        rescue_passes,
                        late,
                    } => {
                        coord.router.stats.events_processed += events;
                        coord.router.stats.messages_delivered += delivered;
                        coord.router.stats.duplicates += duplicates;
                        coord.router.stats.retransmits += retransmits;
                        coord.router.stats.rescue_passes += rescue_passes;
                        coord.router.stats.late_egress_frames += late;
                        done[i] = true;
                    }
                    Frame::Trace { pid, tid, events } => {
                        // Unknown event kinds (version skew) drop here, at
                        // ingestion — the codec accepted them as raw words.
                        let events: Vec<blazes_obs::Event> = events
                            .into_iter()
                            .filter_map(blazes_obs::Event::from_words)
                            .collect();
                        blazes_obs::global().ingest_remote(vec![blazes_obs::RemoteLane {
                            pid,
                            tid,
                            events,
                        }]);
                    }
                    Frame::Error { message } => {
                        return Err(DistError::WorkerFailed {
                            worker: i,
                            cause: FailureCause::Reported(message),
                        });
                    }
                    _ => {}
                }
            }
            Event::Decode(i, conn_id, e) => {
                if coord.slots[i].conn == conn_id {
                    return Err(DistError::WorkerFailed {
                        worker: i,
                        cause: FailureCause::Corrupt(e.to_string()),
                    });
                }
            }
            Event::Eof(i, conn_id) => {
                if coord.slots[i].conn == conn_id && !done[i] {
                    return Err(DistError::WorkerFailed {
                        worker: i,
                        cause: FailureCause::Eof,
                    });
                }
            }
        }
    }

    // Shut the fleet down and reap everything.
    for w in 0..processes {
        coord.router.control(w, &Frame::Shutdown);
    }
    for writer in &mut coord.router.writers {
        *writer = None;
    }
    stop.store(true, Ordering::SeqCst);
    let _ = accept_handle.join();
    for reader in coord.readers.drain(..) {
        let _ = reader.join();
    }
    for slot in &mut coord.slots {
        if let Some(mut child) = slot.child.take() {
            let _ = child.wait();
        }
    }

    if blazes_obs::enabled() {
        coord
            .router
            .stats
            .export_metrics(blazes_obs::global().registry());
    }
    Ok(DistRun {
        sinks,
        stats: coord.router.stats,
    })
}

/// Short display name of a frame, for the stall forensic dump.
fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "hello",
        Frame::Plan { .. } => "plan",
        Frame::Data { .. } => "data",
        Frame::Idle { .. } => "idle",
        Frame::Probe { .. } => "probe",
        Frame::ProbeAck { .. } => "probe-ack",
        Frame::Collect => "collect",
        Frame::SinkResult { .. } => "sink-result",
        Frame::Done { .. } => "done",
        Frame::Shutdown => "shutdown",
        Frame::Error { .. } => "error",
        Frame::Trace { .. } => "trace",
        Frame::Heartbeat { .. } => "heartbeat",
        Frame::Ack { .. } => "ack",
    }
}

/// Read the `Hello` frame a freshly connected worker must send first.
fn read_hello(conn: &mut Conn) -> Result<(u32, u32, u64, Vec<u8>), DistError> {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 256];
    loop {
        if let Some(frame) = decoder.next_frame()? {
            return match frame {
                // The residue matters: a reattaching worker sends its
                // hello and unacked resends back-to-back, so the chunked
                // read can slurp frames past the handshake. They belong
                // to the reader that takes over this connection.
                Frame::Hello {
                    index,
                    epoch,
                    resume_recv,
                } => Ok((index, epoch, resume_recv, decoder.take_buffered())),
                other => Err(DistError::Protocol(format!(
                    "expected hello, got {other:?}"
                ))),
            };
        }
        let n = conn.read(&mut buf)?;
        if n == 0 {
            return Err(DistError::Protocol("eof before hello".to_string()));
        }
        decoder.push(&buf[..n]);
    }
}

/// Coordinator-side reader thread: decode one connection's stream into
/// conn-tagged events.
fn reader_loop(
    index: usize,
    conn_id: u64,
    mut conn: Conn,
    leftover: Vec<u8>,
    tx: &mpsc::Sender<Event>,
) {
    let mut decoder = FrameDecoder::new();
    decoder.push(&leftover);
    let mut buf = [0u8; 64 * 1024];
    loop {
        // Drain before reading: the hello residue may already hold
        // complete frames that no further bytes will ever flush out.
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if tx.send(Event::Frame(index, conn_id, frame)).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Event::Decode(index, conn_id, e));
                    return;
                }
            }
        }
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Event::Eof(index, conn_id));
                return;
            }
            Ok(n) => decoder.push(&buf[..n]),
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Worker entry point. Returns `false` immediately when [`ENV_PARENT`]
/// is not set (the process is not a dist worker — e.g. the `#[ignore]`d
/// libtest entry ran in a normal test sweep); otherwise connects to the
/// parent, executes its partition to completion and returns `true`.
///
/// # Panics
/// On any I/O or protocol failure — a worker dies loudly so the parent's
/// supervisor sees the exit instead of a hang.
pub fn worker_main(registry: &Registry) -> bool {
    let Some(endpoint) = std::env::var_os(ENV_PARENT) else {
        return false;
    };
    let endpoint = endpoint.to_string_lossy().into_owned();
    let index: usize = std::env::var(ENV_INDEX)
        .expect("dist worker index")
        .parse()
        .expect("numeric dist worker index");
    let epoch: u32 = std::env::var(ENV_EPOCH)
        .ok()
        .and_then(|e| e.parse().ok())
        .unwrap_or(0);
    match worker_run(registry, &endpoint, index, epoch) {
        Ok(()) => true,
        Err(e) => panic!("dist worker {index} failed: {e}"),
    }
}

/// One frame read tick on the worker's control loop.
const WORKER_POLL: Duration = Duration::from_millis(2);

/// Dial the parent, retrying briefly: the listener is bound before any
/// spawn, but a TCP accept queue can refuse transiently under load.
fn dial_parent(endpoint: &str) -> Result<Conn, DistError> {
    let mut attempt = 0;
    loop {
        match connect_parent(endpoint) {
            Ok(conn) => return Ok(conn),
            Err(_) if attempt < 20 => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(DistError::Io(e)),
        }
    }
}

/// Re-dial the parent after losing the control socket mid-run: send a
/// resume hello, resend every unacked egress frame, and swap the shared
/// writer onto the fresh socket. Gives up after a few attempts — by then
/// the parent has almost certainly declared this incarnation dead and a
/// replacement is coming.
fn reattach(
    endpoint: &str,
    index: usize,
    epoch: u32,
    recv: u64,
    writer: &Arc<Mutex<Conn>>,
    elog: &Arc<Mutex<EgressLog>>,
) -> Result<Conn, DistError> {
    for attempt in 1..=3u32 {
        std::thread::sleep(Duration::from_millis(25 * u64::from(attempt)));
        let Ok(mut fresh) = connect_parent(endpoint) else {
            continue;
        };
        if fresh
            .write_all(&wire::encode(&Frame::Hello {
                index: index as u32,
                epoch,
                resume_recv: recv,
            }))
            .is_err()
        {
            continue;
        }
        let Ok(reader) = fresh.try_clone() else {
            continue;
        };
        if reader.set_read_timeout(Some(WORKER_POLL)).is_err() {
            continue;
        }
        // Lock order: writer, then log — same as the pump. Holding the
        // writer lock freezes the pump, so no frame can be appended (or
        // sent) while the unacked backlog is resent.
        let mut w = writer
            .lock()
            .map_err(|_| DistError::Protocol("writer poisoned".to_string()))?;
        let log = elog
            .lock()
            .map_err(|_| DistError::Protocol("egress log poisoned".to_string()))?;
        let mut resent_ok = true;
        for frame in log.unacked() {
            if fresh.write_all(&frame.bytes).is_err() {
                resent_ok = false;
                break;
            }
        }
        if !resent_ok {
            continue;
        }
        *w = fresh;
        return Ok(reader);
    }
    Err(DistError::Protocol(
        "lost the coordinator and could not reconnect".to_string(),
    ))
}

fn worker_run(
    registry: &Registry,
    endpoint: &str,
    index: usize,
    epoch: u32,
) -> Result<(), DistError> {
    let mut stream = dial_parent(endpoint)?;
    stream.write_all(&wire::encode(&Frame::Hello {
        index: index as u32,
        epoch,
        resume_recv: 0,
    }))?;

    // Wait for the plan.
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let plan = loop {
        if let Some(frame) = decoder.next_frame()? {
            match frame {
                Frame::Plan { .. } => break frame,
                Frame::Shutdown => return Ok(()),
                other => return Err(DistError::Protocol(format!("expected plan, got {other:?}"))),
            }
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(DistError::Protocol("eof before plan".to_string()));
        }
        decoder.push(&buf[..n]);
    };
    let Frame::Plan {
        topology,
        params,
        seed,
        processes,
        index: plan_index,
        workers,
        stealing,
        speculation,
        trace,
        epoch: plan_epoch,
        heartbeat_ms,
    } = plan
    else {
        unreachable!("matched above");
    };
    if plan_index as usize != index {
        return Err(DistError::Protocol(format!(
            "plan for worker {plan_index}, I am {index}"
        )));
    }
    if plan_epoch != epoch {
        return Err(DistError::Protocol(format!(
            "plan for epoch {plan_epoch}, I am epoch {epoch}"
        )));
    }
    if trace {
        // Record under a per-incarnation pid lane: index+1 (0 is the
        // coordinator), shifted by 1000 per epoch so a respawned worker
        // shows up as its own lane in the merged export.
        let obs = blazes_obs::global();
        obs.set_pid(index as u32 + 1 + 1000 * epoch);
        obs.set_enabled(true);
    }
    let heartbeat_every = Duration::from_millis(u64::from(heartbeat_ms.max(1)));

    // SPMD assembly of this partition.
    let mut pb = ParBuilder::new(seed)
        .with_workers(workers as usize)
        .with_stealing(stealing)
        .with_speculation(speculation);
    let (mut builder, egress_rx, egress_queued) =
        DistWorkerBuilder::new(&mut pb, index, processes as usize);
    let sinks = registry.assemble(&topology, &params, &mut builder)?;
    let wiring = builder.finish();

    let running = pb.build().start();

    // Egress pump: encode, log and write cross-partition frames. Shares
    // the socket with the control loop's replies through a mutex; the
    // pump is the only high-volume writer.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let elog = Arc::new(Mutex::new(EgressLog::new()));
    let written = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let writer = Arc::clone(&writer);
        let elog = Arc::clone(&elog);
        let written = Arc::clone(&written);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<(), DistError> {
            loop {
                match egress_rx.recv_timeout(WORKER_POLL) {
                    Ok((wire, seq, msg)) => {
                        let bytes = wire::encode(&Frame::Data { wire, seq, msg });
                        {
                            // Lock order everywhere: writer, then log.
                            // The frame is logged before the write is
                            // attempted, and a failed write is
                            // survivable — the frame sits in the log for
                            // the reconnect resend, and the parent's
                            // dedup swallows any torn duplicate.
                            let mut w = writer
                                .lock()
                                .map_err(|_| DistError::Protocol("pump writer poisoned".into()))?;
                            elog.lock()
                                .map_err(|_| DistError::Protocol("egress log poisoned".into()))?
                                .append(wire, seq, bytes.clone());
                            let _ = w.write_all(&bytes);
                        }
                        written.fetch_add(1, Ordering::SeqCst);
                        blazes_obs::record(blazes_obs::EventKind::FrameSend, wire, seq);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                }
            }
        })
    };

    // Control loop: deliver ingress frames, answer probes, report
    // idleness, heartbeat. Phase-1 control sends are best-effort: a dead
    // socket is detected by the read path and reattached.
    stream.set_read_timeout(Some(WORKER_POLL))?;
    let mut recv = 0u64;
    let mut last_seq: HashMap<u64, u64> = HashMap::new();
    let mut last_idle: Option<(u64, u64)> = None;
    let mut last_hb: Option<Instant> = None;
    let collect = 'control: loop {
        if last_hb.is_none_or(|t| t.elapsed() >= heartbeat_every) {
            let sent = written.load(Ordering::SeqCst);
            let idle = running.settled() && egress_queued.load(Ordering::SeqCst) == sent;
            let _ = send_control(
                &writer,
                &Frame::Heartbeat {
                    epoch,
                    sent,
                    recv,
                    idle,
                },
            );
            last_hb = Some(Instant::now());
        }
        // Drain frames already buffered *before* blocking on the socket:
        // the plan read slurps whole chunks, so replayed frames can sit
        // fully decoded in the buffer with no further bytes ever arriving
        // to trigger a read-path drain.
        while let Some(frame) = decoder.next_frame()? {
            match frame {
                Frame::Data { wire, seq, msg } => {
                    // Per-wire FIFO assertion: sequence numbers
                    // are contiguous, duplicates repeat one.
                    let expected = last_seq.get(&wire).map_or(0, |s| s + 1);
                    if seq != expected && Some(seq) != expected.checked_sub(1) {
                        let m = format!("wire {wire} broke FIFO: seq {seq}, expected {expected}");
                        let _ = send_control(&writer, &Frame::Error { message: m.clone() });
                        return Err(DistError::Protocol(m));
                    }
                    last_seq.insert(wire, seq.max(expected.saturating_sub(1)));
                    blazes_obs::record(blazes_obs::EventKind::FrameRecv, wire, seq);
                    let (inst, port) = *wiring.ingress.get(&wire).ok_or_else(|| {
                        DistError::Protocol(format!("no ingress for wire {wire}"))
                    })?;
                    running.inject(inst, port, msg);
                    recv += 1;
                    last_idle = None;
                }
                Frame::Probe { nonce } => {
                    let sent = written.load(Ordering::SeqCst);
                    let idle = running.settled() && egress_queued.load(Ordering::SeqCst) == sent;
                    let _ = send_control(
                        &writer,
                        &Frame::ProbeAck {
                            nonce,
                            sent,
                            recv,
                            idle,
                        },
                    );
                }
                Frame::Ack { acks } => {
                    let mut log = elog
                        .lock()
                        .map_err(|_| DistError::Protocol("egress log poisoned".into()))?;
                    for (wire, upto) in acks {
                        log.ack(wire, upto);
                    }
                }
                Frame::Collect => break 'control true,
                Frame::Shutdown => break 'control false,
                other => {
                    return Err(DistError::Protocol(format!(
                        "unexpected frame in run phase: {other:?}"
                    )))
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                stream = reattach(endpoint, index, epoch, recv, &writer, &elog)?;
                decoder = FrameDecoder::new();
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Quiet tick: report idleness when the local runtime has
                // settled and every egress frame has hit the socket.
                let sent = written.load(Ordering::SeqCst);
                if running.settled()
                    && egress_queued.load(Ordering::SeqCst) == sent
                    && last_idle != Some((sent, recv))
                {
                    let _ = send_control(&writer, &Frame::Idle { sent, recv });
                    last_idle = Some((sent, recv));
                }
            }
            Err(_) => {
                stream = reattach(endpoint, index, epoch, recv, &writer, &elog)?;
                decoder = FrameDecoder::new();
            }
        }
    };

    // Finish the local run (end-of-run rescue happens inside), then stop
    // the pump and account anything the rescue tried to send after the
    // wire closed for data.
    let stats = running.finish();
    stop.store(true, Ordering::SeqCst);
    pump.join()
        .map_err(|_| DistError::Protocol("egress pump panicked".to_string()))??;
    let late = egress_queued.load(Ordering::SeqCst) - written.load(Ordering::SeqCst);

    if collect {
        for (pos, (id, sink)) in sinks.iter().enumerate() {
            if owner(id.0, processes as usize) == index {
                send_control(
                    &writer,
                    &Frame::SinkResult {
                        sink: pos as u32,
                        entries: sink.entries(),
                    },
                )?;
            }
        }
        if trace {
            for lane in blazes_obs::global().drain_lanes() {
                send_control(
                    &writer,
                    &Frame::Trace {
                        pid: lane.pid,
                        tid: lane.tid,
                        events: lane
                            .events
                            .into_iter()
                            .map(blazes_obs::Event::to_words)
                            .collect(),
                    },
                )?;
            }
        }
        send_control(
            &writer,
            &Frame::Done {
                events: stats.events_processed,
                delivered: stats.messages_delivered,
                duplicates: stats.duplicates,
                retransmits: stats.retransmits,
                rescue_passes: stats.rescue_passes,
                late,
            },
        )?;
        // Wait for the shutdown order (keeps the socket open until the
        // parent has drained our results).
        stream.set_read_timeout(None)?;
        loop {
            if let Some(frame) = decoder.next_frame()? {
                if matches!(frame, Frame::Shutdown) {
                    break;
                }
                continue;
            }
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => decoder.push(&buf[..n]),
                Err(_) => break,
            }
        }
    }
    Ok(())
}

/// Serialize one control frame onto the shared worker socket.
fn send_control(writer: &Arc<Mutex<Conn>>, frame: &Frame) -> Result<(), DistError> {
    writer
        .lock()
        .map_err(|_| DistError::Protocol("writer poisoned".to_string()))?
        .write_all(&wire::encode(frame))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg)
        }))
    }

    /// The SPMD assembly used by the in-process partition tests: two
    /// echo stages into a sink, instances interleaved across owners.
    fn chain(b: &mut dyn ExecutorBuilder) -> SinkSet {
        let a = b.add_instance(echo());
        let m = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        let ch = b.add_channel(ChannelConfig::lan());
        b.connect(a, PortId(0), m, PortId(0), ch);
        b.connect(m, PortId(0), s, PortId(0), ch);
        for i in 0..50i64 {
            b.inject(0, a, PortId(0), Message::data([i]));
        }
        vec![(s, sink)]
    }

    #[test]
    fn ownership_is_round_robin() {
        assert_eq!(owner(0, 2), 0);
        assert_eq!(owner(1, 2), 1);
        assert_eq!(owner(5, 2), 1);
        assert_eq!(owner(5, 1), 0);
        assert_eq!(owner(5, 4), 1);
    }

    /// Global numbering must be identical no matter which index runs the
    /// assembly, and cross wiring must mirror: a wire leaving partition A
    /// appears in A's `cross_out` and in B's `ingress`.
    #[test]
    fn spmd_numbering_and_cross_wiring_agree() {
        let mut pb0 = ParBuilder::new(1);
        let (mut b0, _rx0, _q0) = DistWorkerBuilder::new(&mut pb0, 0, 2);
        let sinks0 = chain(&mut b0);
        let w0 = b0.finish();

        let mut pb1 = ParBuilder::new(1);
        let (mut b1, _rx1, _q1) = DistWorkerBuilder::new(&mut pb1, 1, 2);
        let sinks1 = chain(&mut b1);
        let w1 = b1.finish();

        assert_eq!(sinks0[0].0, sinks1[0].0, "global sink ids agree");
        assert_eq!(w0.instances, 3);
        assert_eq!(w1.instances, 3);
        // Instances 0 (a) and 2 (s) are owned by 0; instance 1 (m) by 1.
        // Wire 0: a->m crosses 0->1; wire 1: m->s crosses 1->0.
        assert_eq!(w0.cross_out, vec![0]);
        assert_eq!(
            w1.ingress.get(&0).copied(),
            Some((InstanceId(0), PortId(0))),
            "worker 1's local id for global instance 1 is its first par instance"
        );
        assert_eq!(w1.cross_out, vec![1]);
        assert!(w0.ingress.contains_key(&1));
    }

    /// Full partition semantics without processes: run the chain split
    /// across two in-process par runtimes, shuttle egress frames by hand,
    /// and compare against an unpartitioned run.
    #[test]
    fn manual_two_partition_run_matches_unpartitioned() {
        // Reference: single par backend.
        let mut reference = ParBuilder::new(9).with_workers(2);
        let ref_sinks = chain(&mut reference);
        let _ = reference.build().run();
        let expected = ref_sinks[0].1.message_set();
        assert_eq!(expected.len(), 50);

        // Partitioned: two runtimes, manual router.
        let mut pb0 = ParBuilder::new(9).with_workers(2);
        let (mut b0, rx0, q0) = DistWorkerBuilder::new(&mut pb0, 0, 2);
        let sinks0 = chain(&mut b0);
        let w0 = b0.finish();
        let mut pb1 = ParBuilder::new(9).with_workers(2);
        let (mut b1, rx1, q1) = DistWorkerBuilder::new(&mut pb1, 1, 2);
        let _sinks1 = chain(&mut b1);
        let w1 = b1.finish();

        let r0 = pb0.build().start();
        let r1 = pb1.build().start();
        let mut moved = (0u64, 0u64);
        // Shuttle until both partitions quiesce with drained queues.
        loop {
            let mut progress = false;
            while let Ok((wire, _seq, msg)) = rx0.try_recv() {
                let (inst, port) = w1.ingress[&wire];
                r1.inject(inst, port, msg);
                moved.0 += 1;
                progress = true;
            }
            while let Ok((wire, _seq, msg)) = rx1.try_recv() {
                let (inst, port) = w0.ingress[&wire];
                r0.inject(inst, port, msg);
                moved.1 += 1;
                progress = true;
            }
            if !progress
                && r0.settled()
                && r1.settled()
                && q0.load(Ordering::SeqCst) == moved.0
                && q1.load(Ordering::SeqCst) == moved.1
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = r1.finish();
        let _ = r0.finish();
        assert_eq!(moved.0, 50, "a->m crossed once per message");
        assert_eq!(moved.1, 50, "m->s crossed once per message");
        assert_eq!(sinks0[0].1.message_set(), expected);
    }

    /// The registry rejects unknown names and dispatches known ones.
    #[test]
    fn registry_dispatches_by_name() {
        let mut reg = Registry::new();
        reg.register("chain", |b, _params| chain(b));
        assert_eq!(reg.names(), vec!["chain"]);
        let mut probe = ProbeBuilder::new();
        let sinks = reg.assemble("chain", "", &mut probe).unwrap();
        assert_eq!(probe.instances(), 3);
        assert_eq!(probe.wires().len(), 2);
        assert_eq!(probe.injections(), 50);
        assert_eq!(sinks.len(), 1);
        assert!(matches!(
            reg.assemble("nope", "", &mut ProbeBuilder::new()),
            Err(DistError::UnknownTopology(_))
        ));
    }

    /// The probe records wires in global numbering with their channels.
    #[test]
    fn probe_builder_records_structure() {
        let mut probe = ProbeBuilder::new();
        let a = probe.add_instance(echo());
        let b2 = probe.add_instance(echo());
        let ch = probe.add_channel(ChannelConfig::lan().with_loss(0.25));
        probe.connect(a, PortId(0), b2, PortId(0), ch);
        assert_eq!(probe.names(), &["echo".to_string(), "echo".to_string()]);
        assert_eq!(
            probe.wires(),
            &[ProbeWire {
                from: 0,
                out_port: 0,
                to: 1,
                in_port: 0,
                channel: 0
            }]
        );
        assert!(probe.channels()[0].loss_prob > 0.2);
    }

    /// The router's fault draws replicate the par wire schedule: same
    /// seed/wire → same retransmit/duplicate counts as a local par run of
    /// an identical single-wire topology.
    #[test]
    fn router_fault_draws_match_par_wire_schedule() {
        let seed = 77u64;
        let sends = 400i64;
        // Local par reference: one faulty wire, count faults.
        let mut pb = ParBuilder::new(seed).with_workers(1);
        let sink = CollectorSink::new();
        let src = pb.add_instance(echo());
        let dst = pb.add_instance(Box::new(sink.clone()));
        pb.connect_with(
            src,
            PortId(0),
            dst,
            PortId(0),
            ChannelConfig::lan().with_loss(0.2).with_duplicates(0.15),
        );
        for i in 0..sends {
            pb.inject(0, src, PortId(0), Message::data([i]));
        }
        let stats = pb.build().run();

        // Router-style draws over the same wire id 0, same seed, same
        // send count: the schedule must agree exactly.
        let mut rng = StdRng::seed_from_u64(seed ^ 1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (mut retransmits, mut duplicates) = (0u64, 0u64);
        for _ in 0..sends {
            if rng.random::<f64>() < 0.2 {
                retransmits += 1;
            }
            if rng.random::<f64>() < 0.15 {
                duplicates += 1;
            }
        }
        assert_eq!(retransmits, stats.retransmits, "loss schedule identical");
        assert_eq!(duplicates, stats.duplicates, "dup schedule identical");
        assert_eq!(sink.len() as u64, sends as u64 + stats.duplicates);
    }
}
