//! The component abstraction executed by the simulator.
//!
//! A [`Component`] is the runtime counterpart of the black boxes in the
//! Blazes system model (paper Section II-A): deterministic message handlers
//! over named input/output *ports* (interfaces). Determinism is the
//! component author's obligation — the trait provides no randomness or
//! wall-clock access, only the virtual time of the current event.

use crate::message::Message;
use crate::sim::{InstanceId, Time};

/// Execution context handed to a component while it handles one event.
///
/// Emissions are buffered and dispatched by the simulator when the handler
/// returns, at the instance's processing-completion time.
#[derive(Debug)]
pub struct Context {
    /// Virtual time at which processing of the current event *starts*.
    pub now: Time,
    /// The instance executing.
    pub instance: InstanceId,
    pub(crate) emitted: Vec<(usize, Message)>,
    pub(crate) ticks: Vec<Time>,
}

impl Context {
    /// Build a context (public so component crates can unit-test handlers
    /// without a full simulation).
    #[must_use]
    pub fn new(now: Time, instance: InstanceId) -> Self {
        Context {
            now,
            instance,
            emitted: Vec::new(),
            ticks: Vec::new(),
        }
    }

    /// Messages emitted so far, as `(port, message)` pairs (test hook).
    #[must_use]
    pub fn emitted(&self) -> &[(usize, Message)] {
        &self.emitted
    }

    /// Emit `msg` on output port `port`. The message leaves the instance at
    /// its processing-completion time plus channel latency.
    pub fn emit(&mut self, port: usize, msg: Message) {
        self.emitted.push((port, msg));
    }

    /// Request a timer callback (`on_tick`) after `delay` virtual time.
    pub fn schedule_tick(&mut self, delay: Time) {
        self.ticks.push(delay);
    }
}

/// A deterministic dataflow component.
pub trait Component: Send {
    /// Handle one message arriving on input port `port`.
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context);

    /// Handle a timer scheduled via [`Context::schedule_tick`].
    fn on_tick(&mut self, _ctx: &mut Context) {}

    /// Human-readable name for stats and traces.
    fn name(&self) -> &str {
        "component"
    }
}

/// Blanket helper: a component defined by a closure over `(port, msg, ctx)`.
pub struct FnComponent<F> {
    name: String,
    f: F,
}

impl<F> FnComponent<F>
where
    F: FnMut(usize, Message, &mut Context) + Send,
{
    /// Wrap a closure as a component.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnComponent {
            name: name.into(),
            f,
        }
    }
}

impl<F> Component for FnComponent<F>
where
    F: FnMut(usize, Message, &mut Context) + Send,
{
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        (self.f)(port, msg, ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_emissions() {
        let mut ctx = Context::new(5, InstanceId(0));
        ctx.emit(0, Message::data([1i64]));
        ctx.emit(1, Message::Eos);
        ctx.schedule_tick(100);
        assert_eq!(ctx.emitted.len(), 2);
        assert_eq!(ctx.ticks, vec![100]);
        assert_eq!(ctx.now, 5);
    }

    #[test]
    fn fn_component_invokes_closure() {
        let mut c = FnComponent::new("echo", |port, msg, ctx: &mut Context| {
            ctx.emit(port, msg);
        });
        let mut ctx = Context::new(0, InstanceId(3));
        c.on_message(2, Message::data([7i64]), &mut ctx);
        assert_eq!(c.name(), "echo");
        assert_eq!(ctx.emitted, vec![(2, Message::data([7i64]))]);
    }
}
