//! The component abstraction executed by the simulator.
//!
//! A [`Component`] is the runtime counterpart of the black boxes in the
//! Blazes system model (paper Section II-A): deterministic message handlers
//! over named input/output *ports* (interfaces). Determinism is the
//! component author's obligation — the trait provides no randomness or
//! wall-clock access, only the virtual time of the current event.

use crate::message::Message;
use crate::sim::{InstanceId, Time};

/// Execution context handed to a component while it handles one event.
///
/// Emissions are buffered and dispatched by the simulator when the handler
/// returns, at the instance's processing-completion time.
#[derive(Debug)]
pub struct Context {
    /// Virtual time at which processing of the current event *starts*.
    pub now: Time,
    /// The instance executing.
    pub instance: InstanceId,
    pub(crate) emitted: Vec<(usize, Message)>,
    /// Speculation-epoch tags, parallel to `emitted` (lazily padded:
    /// shorter-than-`emitted` means the tail is epoch 0 / committed).
    pub(crate) epochs: Vec<u64>,
    /// Epoch resolutions as `(epoch, commit, position)`, where `position`
    /// is the emission index the resolution precedes — so an abort can be
    /// ordered before the corrected re-emissions of the same activation.
    pub(crate) resolves: Vec<(u64, bool, usize)>,
    pub(crate) ticks: Vec<Time>,
}

impl Context {
    /// Build a context (public so component crates can unit-test handlers
    /// without a full simulation).
    #[must_use]
    pub fn new(now: Time, instance: InstanceId) -> Self {
        Context {
            now,
            instance,
            emitted: Vec::new(),
            epochs: Vec::new(),
            resolves: Vec::new(),
            ticks: Vec::new(),
        }
    }

    /// Messages emitted so far, as `(port, message)` pairs (test hook).
    #[must_use]
    pub fn emitted(&self) -> &[(usize, Message)] {
        &self.emitted
    }

    /// Emit `msg` on output port `port`. The message leaves the instance at
    /// its processing-completion time plus channel latency.
    pub fn emit(&mut self, port: usize, msg: Message) {
        self.emitted.push((port, msg));
    }

    /// Emit `msg` tagged with speculation `epoch` (time-warp mode of the
    /// parallel backend). Consumers treat the message as provisional until
    /// the epoch resolves: a commit makes it permanent, an abort makes
    /// them drop it (or roll back, if already processed). Epoch 0 means
    /// committed and is identical to [`Context::emit`].
    pub fn emit_speculative(&mut self, port: usize, msg: Message, epoch: u64) {
        if epoch != 0 {
            self.epochs.resize(self.emitted.len(), 0);
            self.epochs.push(epoch);
        }
        self.emitted.push((port, msg));
    }

    /// Resolve speculation `epoch`: `commit = true` makes everything
    /// tagged with it permanent; `false` aborts it, rolling back every
    /// consumer that processed tagged messages. The resolution is ordered
    /// between the emissions before and after this call.
    pub fn resolve_speculation(&mut self, epoch: u64, commit: bool) {
        self.resolves.push((epoch, commit, self.emitted.len()));
    }

    /// Epoch tag of emission `i` (0 = committed). Test hook.
    #[must_use]
    pub fn emission_epoch(&self, i: usize) -> u64 {
        self.epochs.get(i).copied().unwrap_or(0)
    }

    /// Epoch resolutions recorded so far, as `(epoch, commit, position)`.
    /// Test hook.
    #[must_use]
    pub fn resolutions(&self) -> &[(u64, bool, usize)] {
        &self.resolves
    }

    /// Did this activation use the speculation surface at all? Backends
    /// without time-warp support reject such activations loudly.
    pub(crate) fn has_speculative_ops(&self) -> bool {
        !self.resolves.is_empty() || self.epochs.iter().any(|&e| e != 0)
    }

    /// Request a timer callback (`on_tick`) after `delay` virtual time.
    pub fn schedule_tick(&mut self, delay: Time) {
        self.ticks.push(delay);
    }
}

/// A deterministic dataflow component.
pub trait Component: Send {
    /// Handle one message arriving on input port `port`.
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context);

    /// Handle a timer scheduled via [`Context::schedule_tick`].
    fn on_tick(&mut self, _ctx: &mut Context) {}

    /// Capture a state checkpoint for time-warp speculation. Return
    /// `None` (the default) to opt out: the runtime then defers
    /// speculative deliveries to this component until their epoch
    /// resolves, which degrades to blocking but stays correct.
    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        None
    }

    /// Restore a checkpoint produced by [`Component::snapshot`]. Only
    /// ever called with this component's own snapshots; the default is
    /// unreachable because the default `snapshot` never offers one.
    fn restore(&mut self, _snapshot: Box<dyn std::any::Any + Send>) {}

    /// End-of-run drain signal. The parallel backend delivers this when
    /// a run has wedged on speculation that no in-flight message can
    /// resolve — every component is asked to resolve what only it can. A
    /// coordination gate aborts its never-sealed speculation session
    /// here, re-emitting what the blocking protocol would have released;
    /// components without such obligations ignore it (the default).
    fn on_drain(&mut self, _ctx: &mut Context) {}

    /// Human-readable name for stats and traces.
    fn name(&self) -> &str {
        "component"
    }
}

/// Blanket helper: a component defined by a closure over `(port, msg, ctx)`.
pub struct FnComponent<F> {
    name: String,
    f: F,
}

impl<F> FnComponent<F>
where
    F: FnMut(usize, Message, &mut Context) + Send,
{
    /// Wrap a closure as a component.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnComponent {
            name: name.into(),
            f,
        }
    }
}

impl<F> Component for FnComponent<F>
where
    F: FnMut(usize, Message, &mut Context) + Send,
{
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        (self.f)(port, msg, ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_emissions() {
        let mut ctx = Context::new(5, InstanceId(0));
        ctx.emit(0, Message::data([1i64]));
        ctx.emit(1, Message::Eos);
        ctx.schedule_tick(100);
        assert_eq!(ctx.emitted.len(), 2);
        assert_eq!(ctx.ticks, vec![100]);
        assert_eq!(ctx.now, 5);
    }

    #[test]
    fn fn_component_invokes_closure() {
        let mut c = FnComponent::new("echo", |port, msg, ctx: &mut Context| {
            ctx.emit(port, msg);
        });
        let mut ctx = Context::new(0, InstanceId(3));
        c.on_message(2, Message::data([7i64]), &mut ctx);
        assert_eq!(c.name(), "echo");
        assert_eq!(ctx.emitted, vec![(2, Message::data([7i64]))]);
    }
}
