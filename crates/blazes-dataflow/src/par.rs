//! The multi-worker parallel executor.
//!
//! Where [`crate::sim`] *models* concurrency in virtual time, this backend
//! *runs* it: component instances execute on OS worker threads, messages
//! travel through per-instance FIFO mailboxes, and delivery order across
//! producers is whatever the scheduler produces. This is exactly the
//! execution regime the Blazes analysis reasons about — confluent
//! (order-insensitive) topologies reach the same final state as any
//! sequential interleaving, which the differential tests assert against the
//! seeded simulator.
//!
//! # Scheduling
//!
//! The runtime is an actor-style scheduler with two modes, selected by
//! [`ParBuilder::with_stealing`]:
//!
//! * **Work stealing** (default). Every instance has a mailbox and an
//!   atomic *scheduled* flag. A sender that transitions the flag makes the
//!   instance runnable by pushing its id onto the sending worker's local
//!   deque (or the global injector, for external injections). Workers pop
//!   their own deque first, then the injector, then steal from siblings
//!   (Chase-Lev-style deques via the `crossbeam-deque` shim). A runnable
//!   instance is drained up to [`ParBuilder::with_batch_size`] messages per
//!   activation, then rescheduled if work remains — so a hot instance's
//!   activations migrate to whichever worker is free, and skewed workloads
//!   balance dynamically. [`ParBuilder::with_spill_threshold`] bounds the
//!   local deque: beyond it, half spills to the injector for idle workers.
//! * **Static sharding** (the pre-stealing scheduler, kept as a baseline).
//!   Instance `i` is only ever run by worker `i % workers`; runnable ids go
//!   to the owner's dedicated queue and are never stolen.
//!
//! # Backpressure
//!
//! [`ParBuilder::with_channel_capacity`] bounds every mailbox. A sender
//! whose destination is full *parks* until the destination drains, instead
//! of growing the queue without bound. Two rules keep this deadlock-free:
//!
//! 1. a worker never parks on a mailbox only it can drain (its own current
//!    instance, or — under static sharding — any instance of its shard);
//! 2. a worker never parks if it would be the last runnable worker: it
//!    overshoots the capacity instead (counted in
//!    [`WorkerStats::overflow_sends`]).
//!
//! So at least one worker is always runnable and quiescence is reached even
//! for cyclic topologies; the bound is strict in steady state and soft only
//! in the escape case.
//!
//! # Guarantees
//!
//! * **Per-wire FIFO — always.** The scheduled flag makes instance
//!   execution exclusive: however activations migrate between workers, a
//!   producer's emissions are routed into destination mailboxes *before*
//!   the producer can be re-activated elsewhere, and mailboxes are FIFO.
//!   Seal and EOS punctuations therefore never overtake the records they
//!   cover — the invariant the sealing protocol needs (paper Section V-B1)
//!   — including under bounded channels, where a parked send completes
//!   before the producer proceeds. Note this is *stronger* than the
//!   simulator for channels configured with [`ChannelConfig::with_fifo`]
//!   `(false)`: single-wire reordering is not reproduced here.
//! * **At-least-once faults, with reproducible schedules.** Channel
//!   `duplicate_prob` injects duplicate deliveries and `loss_prob` counts
//!   a retransmission (the message is still delivered — losses are
//!   retried, as in the simulator). Fault draws come from *per-wire*
//!   seeded RNG streams: the k-th *send* on a wire sees the same
//!   loss/duplicate decisions whatever the worker count or thread
//!   interleaving (unlike the per-worker RNGs this replaced, where even
//!   the decision sequence depended on thread timing). Which *record*
//!   occupies position k is deterministic only where the producer's
//!   emission order is — always true for single-input pipelines, but at a
//!   fan-in component the interleaving of its inputs still decides which
//!   record each draw lands on.
//! * **Quiescence.** `run` returns once every injected and derived message
//!   has been processed, detected by a global in-flight counter.
//!
//! `Context::now` under this backend is a per-instance event ordinal, not
//! virtual microseconds: it orders the events one instance observed but is
//! not comparable across instances.

use crate::backend::ExecutorBuilder;
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::metrics::{event_balance, InstanceStats, WorkerStats};
use crate::sim::{InstanceId, Time};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as TaskQueue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default cap on worker threads when the builder does not pin a count.
const DEFAULT_MAX_WORKERS: usize = 8;

/// Default number of messages drained per instance activation.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// How long a parked thread sleeps before re-checking its wake condition.
/// Parks are also woken eagerly; the timeout only bounds lost-wakeup races.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Error returned by [`ParBuilder`] setters on invalid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParConfigError {
    /// Batch size must be at least 1.
    ZeroBatchSize,
    /// Channel capacity must be at least 1.
    ZeroChannelCapacity,
    /// Spill threshold must be at least 1.
    ZeroSpillThreshold,
}

impl fmt::Display for ParConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParConfigError::ZeroBatchSize => f.write_str("batch size must be at least 1"),
            ParConfigError::ZeroChannelCapacity => {
                f.write_str("channel capacity must be at least 1")
            }
            ParConfigError::ZeroSpillThreshold => f.write_str("spill threshold must be at least 1"),
        }
    }
}

impl Error for ParConfigError {}

/// Scheduler selection for a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Instance `i` is pinned to worker `i % workers` (the pre-stealing
    /// scheduler, kept as a measurable baseline).
    StaticShard,
    /// Dynamic load balancing: runnable instances migrate to idle workers.
    WorkStealing,
}

/// Tuning knobs for the parallel executor, bundled so higher layers (the
/// Storm topology builder, benches) can thread them through without
/// depending on every individual setter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParTuning {
    /// Use the work-stealing scheduler (`false` = static sharding).
    pub stealing: bool,
    /// Messages drained per instance activation.
    pub batch_size: usize,
    /// Mailbox capacity; `None` = unbounded.
    pub channel_capacity: Option<usize>,
    /// Local-deque spill threshold; `None` = never spill.
    pub spill_threshold: Option<usize>,
}

impl Default for ParTuning {
    fn default() -> Self {
        ParTuning {
            stealing: true,
            batch_size: DEFAULT_BATCH_SIZE,
            channel_capacity: None,
            spill_threshold: None,
        }
    }
}

/// One mailbox entry.
#[derive(Debug)]
enum MailItem {
    Deliver { port: usize, msg: Message },
    Tick,
}

/// A wire resolved for execution: destination plus the fault behavior and
/// the wire's private RNG stream (present only when faults are configured).
struct WireRt {
    dst: usize,
    dst_port: usize,
    loss_prob: f64,
    duplicate_prob: f64,
    rng: Option<StdRng>,
}

/// Mutable per-instance state, owned by whichever worker holds the
/// instance's scheduled flag (the mutex is uncontended by protocol; it
/// exists so the compiler can prove the sharing safe).
struct Cell {
    component: Box<dyn Component>,
    wires: Vec<Vec<WireRt>>,
    processed: u64,
    now: Time,
}

struct Mailbox {
    queue: Mutex<VecDeque<MailItem>>,
    /// Signaled when the queue shrinks and senders are parked on it.
    space: Condvar,
    waiting_senders: AtomicUsize,
    /// True while the instance is in a run queue or being executed.
    scheduled: AtomicBool,
    /// High-water mark of the queue length (stats).
    depth_max: AtomicUsize,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            waiting_senders: AtomicUsize::new(0),
            scheduled: AtomicBool::new(false),
            depth_max: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<MailItem>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push_locked(&self, q: &mut VecDeque<MailItem>, item: MailItem) {
        q.push_back(item);
        let len = q.len();
        if len > self.depth_max.load(Ordering::Relaxed) {
            self.depth_max.store(len, Ordering::Relaxed);
        }
    }

    fn pop(&self) -> Option<MailItem> {
        let item = self.lock().pop_front();
        if item.is_some() && self.waiting_senders.load(Ordering::SeqCst) > 0 {
            self.space.notify_all();
        }
        item
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

struct Slot {
    cell: Mutex<Cell>,
    mailbox: Mailbox,
}

/// A cache-line-isolated atomic, so per-worker counters do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedI64(AtomicI64);

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Sharded in-flight accounting.
///
/// The predecessor was a single `AtomicI64` touched with a SeqCst RMW per
/// send *and* per processed message — a contended-line hotspot at high
/// worker counts (the ROADMAP item this replaces). Now each worker owns
/// one padded cell (cell `workers` belongs to the injecting coordinator
/// thread) and a monotone *send epoch*:
///
/// * before any of an event's emissions become visible, the processing
///   worker adds their count to **its own** cell and bumps its epoch —
///   uncontended RMWs on a private line;
/// * after draining a batch, it subtracts the number of messages it
///   consumed from its own cell, once per activation instead of once per
///   message.
///
/// The global sum is exact whenever all updates have landed; a worker
/// that runs out of work detects quiescence by [`InFlight::quiescent`]:
/// read all epochs, sum all cells, re-read the epochs. A non-atomic scan
/// can only be fooled into a false zero by *missing* an increment whose
/// matching decrement it *saw* — but the decrement happens causally after
/// the increment (through the mailbox push), so the missed increment (and
/// its epoch bump) must fall inside the scan window, and the epoch
/// re-read rejects the scan. Sum ≠ 0 or changed epochs simply mean "not
/// quiescent yet"; the parked worker re-scans on its next timeout.
struct InFlight {
    cells: Vec<PaddedI64>,
    epochs: Vec<PaddedU64>,
}

impl InFlight {
    fn new(shards: usize, injected: i64) -> Self {
        let cells: Vec<PaddedI64> = (0..shards).map(|_| PaddedI64::default()).collect();
        // External injections are pre-charged to the coordinator's cell.
        cells[shards - 1].0.store(injected, Ordering::SeqCst);
        InFlight {
            cells,
            epochs: (0..shards).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// Charge `n` sends to `shard` *before* the messages become visible.
    fn charge(&self, shard: usize, n: i64) {
        self.cells[shard].0.fetch_add(n, Ordering::SeqCst);
        self.epochs[shard].0.fetch_add(1, Ordering::SeqCst);
    }

    /// Settle `n` processed messages against `shard`.
    fn settle(&self, shard: usize, n: i64) {
        self.cells[shard].0.fetch_sub(n, Ordering::SeqCst);
    }

    /// Validated quiescence scan (see type docs for the argument).
    fn quiescent(&self) -> bool {
        let read_epochs = |buf: &mut Vec<u64>| {
            buf.clear();
            buf.extend(self.epochs.iter().map(|e| e.0.load(Ordering::SeqCst)));
        };
        let mut before = Vec::with_capacity(self.epochs.len());
        let mut after = Vec::with_capacity(self.epochs.len());
        for _ in 0..2 {
            read_epochs(&mut before);
            let sum: i64 = self.cells.iter().map(|c| c.0.load(Ordering::SeqCst)).sum();
            if sum != 0 {
                return false;
            }
            read_epochs(&mut after);
            if before == after {
                return true;
            }
        }
        false
    }
}

struct Counters {
    in_flight: InFlight,
    events: AtomicU64,
    deliveries: AtomicU64,
    duplicates: AtomicU64,
    retransmits: AtomicU64,
}

/// State shared by all workers and the coordinating thread.
struct Shared {
    slots: Vec<Slot>,
    mode: SchedulerMode,
    workers: usize,
    batch_size: usize,
    capacity: Option<usize>,
    spill_threshold: usize,
    /// Global run queue (work-stealing mode; also external injections).
    injector: Injector<usize>,
    /// Per-worker run queues (static mode).
    static_queues: Vec<Injector<usize>>,
    /// Steal handles to every worker's local deque (work-stealing mode).
    stealers: Vec<Stealer<usize>>,
    counters: Counters,
    done: AtomicBool,
    /// Workers currently runnable (not parked). A sender refuses to park
    /// when it would drop this to zero — the no-deadlock escape.
    active: AtomicUsize,
    /// Workers parked idle (lets senders skip the wake syscall when zero).
    sleepers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Shared {
    /// Mark the run finished and wake every parked thread.
    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        let guard = self
            .idle_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.idle_cv.notify_all();
        drop(guard);
        for slot in &self.slots {
            if slot.mailbox.waiting_senders.load(Ordering::SeqCst) > 0 {
                slot.mailbox.space.notify_all();
            }
        }
    }

    /// Wake one parked worker if any are sleeping.
    fn wake(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let guard = self
                .idle_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // notify_all, not notify_one: under static sharding the task is
            // only runnable by its owner, which may not be the thread a
            // notify_one would pick.
            self.idle_cv.notify_all();
            drop(guard);
        }
    }

    fn owner_of(&self, inst: usize) -> usize {
        inst % self.workers
    }

    /// Push a mailbox item from the coordinating (non-worker) thread,
    /// honoring capacity by waiting — workers guarantee progress, so the
    /// wait always ends.
    fn external_push(&self, dst: usize, item: MailItem) {
        let mb = &self.slots[dst].mailbox;
        let mut q = mb.lock();
        if let Some(cap) = self.capacity {
            while q.len() >= cap && !self.done.load(Ordering::SeqCst) {
                mb.waiting_senders.fetch_add(1, Ordering::SeqCst);
                let (guard, _) = mb
                    .space
                    .wait_timeout(q, PARK_TIMEOUT)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
                mb.waiting_senders.fetch_sub(1, Ordering::SeqCst);
            }
        }
        mb.push_locked(&mut q, item);
        drop(q);
        if mb
            .scheduled
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            match self.mode {
                SchedulerMode::StaticShard => self.static_queues[self.owner_of(dst)].push(dst),
                SchedulerMode::WorkStealing => self.injector.push(dst),
            }
            self.wake();
        }
    }
}

/// A wire as the builder records it: `(dst, dst_port, channel, wire_id)`.
type WireSpec = (usize, usize, usize, u64);

/// Builder for a parallel run: add instances, wire ports, inject inputs —
/// the same assembly surface as [`crate::sim::SimBuilder`].
pub struct ParBuilder {
    components: Vec<Box<dyn Component>>,
    /// Outgoing wires, per instance, per output port.
    wires: Vec<Vec<Vec<WireSpec>>>,
    channels: Vec<ChannelConfig>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    seed: u64,
    next_wire_id: u64,
    workers: Option<usize>,
    tuning: ParTuning,
}

impl ParBuilder {
    /// Start a new parallel run description. `seed` drives the per-wire
    /// fault-injection RNG streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ParBuilder {
            components: Vec::new(),
            wires: Vec::new(),
            channels: Vec::new(),
            injected: Vec::new(),
            seed,
            next_wire_id: 0,
            workers: None,
            tuning: ParTuning::default(),
        }
    }

    /// Pin the worker-thread count (default: available parallelism, capped
    /// at 8, never more than the instance count).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Set the per-activation drain batch size (default
    /// [`DEFAULT_BATCH_SIZE`]). Larger batches amortize scheduling; smaller
    /// ones migrate hot instances between workers more eagerly.
    ///
    /// # Errors
    /// [`ParConfigError::ZeroBatchSize`] when `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Result<Self, ParConfigError> {
        if batch_size == 0 {
            return Err(ParConfigError::ZeroBatchSize);
        }
        self.tuning.batch_size = batch_size;
        Ok(self)
    }

    /// Select the scheduler: `true` (default) for work stealing, `false`
    /// for the static `id % workers` sharding baseline.
    #[must_use]
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.tuning.stealing = stealing;
        self
    }

    /// Bound every mailbox to `capacity` messages; a full destination parks
    /// the sender (backpressure) instead of queueing without limit. See the
    /// module docs for the no-deadlock escape that makes the bound soft in
    /// pathological cases.
    ///
    /// # Errors
    /// [`ParConfigError::ZeroChannelCapacity`] when `capacity` is zero.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Result<Self, ParConfigError> {
        if capacity == 0 {
            return Err(ParConfigError::ZeroChannelCapacity);
        }
        self.tuning.channel_capacity = Some(capacity);
        Ok(self)
    }

    /// Spill half of a worker's local run queue to the global injector when
    /// it grows beyond `threshold`, so idle workers can pick the work up
    /// without stealing (work-stealing mode only).
    ///
    /// # Errors
    /// [`ParConfigError::ZeroSpillThreshold`] when `threshold` is zero.
    pub fn with_spill_threshold(mut self, threshold: usize) -> Result<Self, ParConfigError> {
        if threshold == 0 {
            return Err(ParConfigError::ZeroSpillThreshold);
        }
        self.tuning.spill_threshold = Some(threshold);
        Ok(self)
    }

    /// Apply a [`ParTuning`] bundle.
    ///
    /// # Errors
    /// The same validation errors as the individual setters.
    pub fn with_tuning(mut self, tuning: ParTuning) -> Result<Self, ParConfigError> {
        if tuning.batch_size == 0 {
            return Err(ParConfigError::ZeroBatchSize);
        }
        if tuning.channel_capacity == Some(0) {
            return Err(ParConfigError::ZeroChannelCapacity);
        }
        if tuning.spill_threshold == Some(0) {
            return Err(ParConfigError::ZeroSpillThreshold);
        }
        self.tuning = tuning;
        Ok(self)
    }

    /// Add a component instance.
    pub fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let id = InstanceId(self.components.len());
        self.components.push(component);
        self.wires.push(Vec::new());
        id
    }

    /// Register a channel configuration and return its handle for reuse.
    pub fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        self.channels.push(cfg);
        self.channels.len() - 1
    }

    /// Wire output `out_port` of `from` to input `in_port` of `to` over the
    /// channel registered as `channel`. Wires are numbered in registration
    /// order; the number seeds the wire's fault RNG stream, which is what
    /// makes fault schedules independent of the worker count.
    pub fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        assert!(channel < self.channels.len(), "unknown channel handle");
        assert!(to.0 < self.components.len(), "unknown destination instance");
        let wires = &mut self.wires[from.0];
        if wires.len() <= out_port {
            wires.resize_with(out_port + 1, Vec::new);
        }
        let wire_id = self.next_wire_id;
        self.next_wire_id += 1;
        wires[out_port].push((to.0, in_port, channel, wire_id));
    }

    /// Convenience: wire with a fresh channel config.
    pub fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }

    /// Inject an external message. `at` is an ordering key only (the
    /// parallel backend has no virtual clock): injections are dispatched
    /// in ascending `at`, ties in insertion order — the same order the
    /// simulator's event queue would open with.
    pub fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        self.injected.push((at, to, port, msg));
    }

    /// Finalize into a runnable [`ParExecutor`].
    #[must_use]
    pub fn build(mut self) -> ParExecutor {
        // An explicitly pinned count is honored as-is; only the derived
        // default is capped and clamped to the instance count.
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(DEFAULT_MAX_WORKERS)
                .min(self.components.len().max(1))
        });
        // Dispatch order: ascending injection time, insertion order on ties
        // (stable sort), mirroring the simulator's opening event order.
        self.injected.sort_by_key(|&(at, _, _, _)| at);

        let seed = self.seed;
        let channels = self.channels;
        let slots: Vec<Slot> = self
            .components
            .into_iter()
            .zip(self.wires)
            .map(|(component, ports)| {
                let wires = ports
                    .into_iter()
                    .map(|port_wires| {
                        port_wires
                            .into_iter()
                            .map(|(dst, dst_port, channel, wire_id)| {
                                let cfg = &channels[channel];
                                let faulty = cfg.loss_prob > 0.0 || cfg.duplicate_prob > 0.0;
                                WireRt {
                                    dst,
                                    dst_port,
                                    loss_prob: cfg.loss_prob,
                                    duplicate_prob: cfg.duplicate_prob,
                                    rng: faulty.then(|| {
                                        StdRng::seed_from_u64(
                                            seed ^ (wire_id + 1)
                                                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                                        )
                                    }),
                                }
                            })
                            .collect()
                    })
                    .collect();
                Slot {
                    cell: Mutex::new(Cell {
                        component,
                        wires,
                        processed: 0,
                        now: 0,
                    }),
                    mailbox: Mailbox::new(),
                }
            })
            .collect();

        ParExecutor {
            slots,
            injected: self.injected,
            workers,
            tuning: self.tuning,
        }
    }
}

impl ExecutorBuilder for ParBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        ParBuilder::add_instance(self, component)
    }

    fn set_service_time(&mut self, _id: InstanceId, _service: Time) {
        // Wall-clock backend: processing costs are whatever the component
        // actually costs; modeled service times do not apply.
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        ParBuilder::add_channel(self, cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        ParBuilder::connect(self, from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        ParBuilder::inject(self, at, to, port, msg);
    }
}

/// Aggregate statistics of one parallel run.
#[derive(Debug, Clone)]
pub struct ParStats {
    /// Total events processed (deliveries + ticks).
    pub events_processed: u64,
    /// Messages delivered to instances.
    pub messages_delivered: u64,
    /// Channel-level duplicate deliveries injected.
    pub duplicates: u64,
    /// Channel-level retransmissions counted (message still delivered).
    pub retransmits: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Scheduler the run used.
    pub mode: SchedulerMode,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Per-instance breakdown (`busy_until` is 0: no virtual clock).
    pub per_instance: Vec<InstanceStats>,
    /// Per-worker scheduling breakdown (steals, parks, spills, skew).
    pub per_worker: Vec<WorkerStats>,
    /// High-water mark over all mailbox depths.
    pub max_mailbox_depth: usize,
}

impl ParStats {
    /// Throughput in messages per wall-clock second.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.messages_delivered as f64 / secs
    }

    /// Load-balance summary: max worker events over mean worker events
    /// (1.0 = perfectly even).
    #[must_use]
    pub fn balance(&self) -> f64 {
        event_balance(&self.per_worker)
    }

    /// Total tasks obtained by stealing, across workers.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }
}

/// A runnable parallel execution.
pub struct ParExecutor {
    slots: Vec<Slot>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    workers: usize,
    tuning: ParTuning,
}

impl ParExecutor {
    /// Execute to quiescence and return run statistics.
    ///
    /// # Panics
    /// Re-raises the first panic of any component handler.
    #[must_use]
    pub fn run(self) -> ParStats {
        let started = Instant::now();
        let workers = self.workers;
        let mode = if self.tuning.stealing {
            SchedulerMode::WorkStealing
        } else {
            SchedulerMode::StaticShard
        };

        let locals: Vec<TaskQueue<usize>> = (0..workers).map(|_| TaskQueue::new_fifo()).collect();
        let stealers = locals.iter().map(TaskQueue::stealer).collect();

        let shared = Arc::new(Shared {
            slots: self.slots,
            mode,
            workers,
            batch_size: self.tuning.batch_size,
            capacity: self.tuning.channel_capacity,
            spill_threshold: self.tuning.spill_threshold.unwrap_or(usize::MAX),
            injector: Injector::new(),
            static_queues: (0..workers).map(|_| Injector::new()).collect(),
            stealers,
            counters: Counters {
                // One shard per worker plus one for the injecting
                // coordinator thread.
                in_flight: InFlight::new(workers + 1, self.injected.len() as i64),
                events: AtomicU64::new(0),
                deliveries: AtomicU64::new(0),
                duplicates: AtomicU64::new(0),
                retransmits: AtomicU64::new(0),
            },
            done: AtomicBool::new(false),
            active: AtomicUsize::new(workers),
            sleepers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });

        if self.injected.is_empty() {
            // Nothing will ever decrement the counter to trigger shutdown.
            shared.done.store(true, Ordering::SeqCst);
        }

        let mut handles = Vec::with_capacity(workers);
        for (w, local) in locals.into_iter().enumerate() {
            let ctx = WorkerCtx {
                shared: Arc::clone(&shared),
                idx: w,
                local,
                local_len: 0,
                scratch: Vec::new(),
                ws: WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                },
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("blazes-par-{w}"))
                    .spawn(move || ctx.run())
                    .expect("spawn worker thread"),
            );
        }

        // Dispatch injections (workers are already listening). Pushing in
        // the sorted order preserves each instance's injection sequence.
        for (_, to, port, msg) in self.injected {
            shared.external_push(to.0, MailItem::Deliver { port, msg });
        }

        let mut per_worker = Vec::with_capacity(workers);
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(ws) => per_worker.push(ws),
                Err(payload) => {
                    // Keep the first worker's payload: later panics are
                    // usually cascades of the originating failure.
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        per_worker.sort_by_key(|w| w.worker);

        let shared = Arc::into_inner(shared).expect("workers joined, no other holders");
        let mut per_instance = Vec::with_capacity(shared.slots.len());
        let mut max_mailbox_depth = 0;
        for slot in shared.slots {
            max_mailbox_depth = max_mailbox_depth.max(slot.mailbox.depth_max.into_inner());
            let cell = slot
                .cell
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            per_instance.push(InstanceStats {
                name: cell.component.name().to_string(),
                processed: cell.processed,
                busy_until: 0,
            });
        }

        ParStats {
            events_processed: shared.counters.events.load(Ordering::SeqCst),
            messages_delivered: shared.counters.deliveries.load(Ordering::SeqCst),
            duplicates: shared.counters.duplicates.load(Ordering::SeqCst),
            retransmits: shared.counters.retransmits.load(Ordering::SeqCst),
            workers,
            mode,
            wall_time: started.elapsed(),
            per_instance,
            per_worker,
            max_mailbox_depth,
        }
    }
}

/// Sets the global done flag if the owning worker unwinds, so sibling
/// workers (and the joining coordinator) cannot deadlock on a dead peer.
struct PanicGuard {
    shared: Arc<Shared>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.finish();
        }
    }
}

struct WorkerCtx {
    shared: Arc<Shared>,
    idx: usize,
    local: TaskQueue<usize>,
    /// Approximate local queue length (stealers may shrink it unseen;
    /// batch steals into the deque resync it in `find_task`).
    local_len: usize,
    /// Reusable staging buffer for one event's outbound sends, so they
    /// can be charged to the in-flight shard in one RMW before any
    /// becomes visible.
    scratch: Vec<(usize, MailItem)>,
    ws: WorkerStats,
}

impl WorkerCtx {
    fn run(mut self) -> WorkerStats {
        let guard = PanicGuard {
            shared: Arc::clone(&self.shared),
        };
        // One Arc clone for the whole worker lifetime; the hot path below
        // passes `&Shared` down instead of touching the refcount per call.
        let shared = Arc::clone(&self.shared);
        loop {
            if shared.done.load(Ordering::SeqCst) {
                break;
            }
            match self.find_task(&shared) {
                Some(inst) => self.run_instance(&shared, inst),
                None => {
                    if !self.idle_park(&shared) {
                        break;
                    }
                }
            }
        }
        drop(guard);
        self.ws
    }

    fn find_task(&mut self, shared: &Shared) -> Option<usize> {
        if let Some(inst) = self.local.pop() {
            self.local_len = self.local_len.saturating_sub(1);
            return Some(inst);
        }
        self.local_len = 0;
        match shared.mode {
            SchedulerMode::StaticShard => {
                match Self::steal_until_settled(|| {
                    shared.static_queues[self.idx].steal_batch_and_pop(&self.local)
                }) {
                    Some(inst) => {
                        // Batch steals moved extra tasks into the local
                        // deque; resync the length estimate.
                        self.local_len = self.local.len();
                        self.ws.injector_pops += 1;
                        Some(inst)
                    }
                    None => None,
                }
            }
            SchedulerMode::WorkStealing => {
                if let Some(inst) =
                    Self::steal_until_settled(|| shared.injector.steal_batch_and_pop(&self.local))
                {
                    self.local_len = self.local.len();
                    self.ws.injector_pops += 1;
                    return Some(inst);
                }
                // Steal from siblings, starting just past ourselves so the
                // pressure spreads instead of converging on worker 0.
                for i in 1..shared.workers {
                    let victim = (self.idx + i) % shared.workers;
                    if let Some(inst) =
                        Self::steal_until_settled(|| shared.stealers[victim].steal())
                    {
                        self.ws.steals += 1;
                        return Some(inst);
                    }
                }
                None
            }
        }
    }

    /// Retry a steal operation until it yields success or empty.
    fn steal_until_settled(mut op: impl FnMut() -> Steal<usize>) -> Option<usize> {
        loop {
            match op() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        }
    }

    /// Drain up to `batch_size` messages from one instance, then release or
    /// reschedule it.
    fn run_instance(&mut self, shared: &Shared, inst: usize) {
        let slot = &shared.slots[inst];
        self.ws.activations += 1;
        let mut cell = slot
            .cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut drained = 0usize;
        while drained < shared.batch_size {
            let Some(item) = slot.mailbox.pop() else {
                break;
            };
            self.process(shared, inst, item, &mut cell);
            drained += 1;
            self.ws.events += 1;
        }
        drop(cell);
        // Settle the whole batch against this worker's shard in one RMW.
        // Deferring decrements is safe (the sum only over-approximates);
        // quiescence is detected by the idle-scan in `idle_park`.
        if drained > 0 {
            shared.counters.in_flight.settle(self.idx, drained as i64);
        }

        // Release protocol: keep the scheduled flag while work remains;
        // otherwise clear it and re-check for the racing producer whose
        // flag CAS failed just before we cleared.
        if !slot.mailbox.is_empty() {
            self.enqueue_ready(shared, inst);
        } else {
            slot.mailbox.scheduled.store(false, Ordering::SeqCst);
            if !slot.mailbox.is_empty()
                && slot
                    .mailbox
                    .scheduled
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.enqueue_ready(shared, inst);
            }
        }
    }

    fn process(&mut self, shared: &Shared, inst: usize, item: MailItem, cell: &mut Cell) {
        shared.counters.events.fetch_add(1, Ordering::Relaxed);
        cell.now += 1;
        let mut ctx = Context::new(cell.now, InstanceId(inst));
        match item {
            MailItem::Deliver { port, msg } => {
                shared.counters.deliveries.fetch_add(1, Ordering::Relaxed);
                cell.component.on_message(port, msg, &mut ctx);
                cell.processed += 1;
            }
            MailItem::Tick => cell.component.on_tick(&mut ctx),
        }

        let Context { emitted, ticks, .. } = ctx;
        let mut staged = std::mem::take(&mut self.scratch);
        for (out_port, msg) in emitted {
            Self::stage(shared, out_port, msg, &mut cell.wires, &mut staged);
        }
        for _delay in ticks {
            // No virtual clock: a tick fires as the instance's next
            // self-event, preserving order relative to its own emissions.
            staged.push((inst, MailItem::Tick));
        }
        if !staged.is_empty() {
            // Charge every outbound message to this worker's shard BEFORE
            // any of them becomes visible — the invariant that keeps the
            // sharded quiescence scan from under-counting.
            shared
                .counters
                .in_flight
                .charge(self.idx, staged.len() as i64);
            for (dst, item) in staged.drain(..) {
                self.send(shared, inst, dst, item);
            }
        }
        self.scratch = staged;
    }

    /// Resolve one emission along every wire of `(instance, out_port)`
    /// into staged mail items, drawing faults from each wire's private
    /// RNG stream.
    fn stage(
        shared: &Shared,
        out_port: usize,
        msg: Message,
        wires: &mut [Vec<WireRt>],
        staged: &mut Vec<(usize, MailItem)>,
    ) {
        let Some(port_wires) = wires.get_mut(out_port) else {
            return;
        };
        for wire in port_wires {
            let mut duplicate = false;
            if let Some(rng) = wire.rng.as_mut() {
                if wire.loss_prob > 0.0 && rng.random::<f64>() < wire.loss_prob {
                    // The first transmission is lost and retried; delivery
                    // still happens (at-least-once), just counted.
                    shared.counters.retransmits.fetch_add(1, Ordering::Relaxed);
                }
                duplicate = wire.duplicate_prob > 0.0 && rng.random::<f64>() < wire.duplicate_prob;
            }
            let dst = wire.dst;
            let dst_port = wire.dst_port;
            staged.push((
                dst,
                MailItem::Deliver {
                    port: dst_port,
                    msg: msg.clone(),
                },
            ));
            if duplicate {
                shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                staged.push((
                    dst,
                    MailItem::Deliver {
                        port: dst_port,
                        msg: msg.clone(),
                    },
                ));
            }
        }
    }

    /// Push one (already charged) item into the destination mailbox
    /// (parking on a bounded full mailbox when it is safe to do so), and
    /// make the destination runnable.
    fn send(&mut self, shared: &Shared, src: usize, dst: usize, item: MailItem) {
        let mb = &shared.slots[dst].mailbox;
        let mut q = mb.lock();
        if let Some(cap) = shared.capacity {
            // Never park on a mailbox only this worker can drain: the
            // current instance's own (self-loop), or — under static
            // sharding — any instance of this worker's shard.
            let self_drained = dst == src
                || (shared.mode == SchedulerMode::StaticShard && shared.owner_of(dst) == self.idx);
            if !self_drained {
                while q.len() >= cap && !shared.done.load(Ordering::SeqCst) {
                    // Refuse to be the last runnable worker (the
                    // no-deadlock escape): overshoot instead.
                    let prev = shared.active.fetch_sub(1, Ordering::SeqCst);
                    if prev <= 1 {
                        shared.active.fetch_add(1, Ordering::SeqCst);
                        self.ws.overflow_sends += 1;
                        break;
                    }
                    mb.waiting_senders.fetch_add(1, Ordering::SeqCst);
                    self.ws.backpressure_parks += 1;
                    let parked = Instant::now();
                    let (guard, _) = mb
                        .space
                        .wait_timeout(q, PARK_TIMEOUT)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    q = guard;
                    mb.waiting_senders.fetch_sub(1, Ordering::SeqCst);
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    self.ws.backpressure_park_time += parked.elapsed();
                }
            }
        }
        mb.push_locked(&mut q, item);
        drop(q);
        if mb
            .scheduled
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.enqueue_ready(shared, dst);
        }
    }

    /// Put a runnable instance where a worker will find it.
    fn enqueue_ready(&mut self, shared: &Shared, inst: usize) {
        match shared.mode {
            SchedulerMode::StaticShard => {
                shared.static_queues[shared.owner_of(inst)].push(inst);
            }
            SchedulerMode::WorkStealing => {
                self.local.push(inst);
                self.local_len += 1;
                if self.local_len > self.ws.max_local_queue {
                    self.ws.max_local_queue = self.local_len;
                }
                if self.local_len > shared.spill_threshold {
                    // Shed half the local queue to the injector so idle
                    // workers can pick it up without stealing.
                    let target = shared.spill_threshold / 2;
                    while self.local_len > target {
                        match self.local.pop() {
                            Some(t) => {
                                shared.injector.push(t);
                                self.local_len -= 1;
                                self.ws.spills += 1;
                            }
                            None => {
                                self.local_len = 0;
                                break;
                            }
                        }
                    }
                }
            }
        }
        shared.wake();
    }

    /// Park until new work may exist. Returns `false` when the run is done.
    fn idle_park(&mut self, shared: &Shared) -> bool {
        let guard = shared
            .idle_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shared.done.load(Ordering::SeqCst) {
            return false;
        }
        // Re-check under the lock so a wake between our failed find_task
        // and this park cannot be lost.
        let maybe_work = match shared.mode {
            SchedulerMode::StaticShard => !shared.static_queues[self.idx].is_empty(),
            SchedulerMode::WorkStealing => {
                !shared.injector.is_empty() || shared.stealers.iter().any(|s| !s.is_empty())
            }
        };
        if maybe_work {
            return true;
        }
        // No runnable work anywhere in sight: fold the per-worker
        // in-flight cells. A validated zero means every injected and
        // derived message has been processed — the run is over.
        if shared.counters.in_flight.quiescent() {
            drop(guard);
            shared.finish();
            return false;
        }
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        let parked = Instant::now();
        let (guard, _) = shared
            .idle_cv
            .wait_timeout(guard, PARK_TIMEOUT)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(guard);
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.ws.idle_park_time += parked.elapsed();
        !shared.done.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::sinks::CollectorSink;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg)
        }))
    }

    /// Run the same assembly under every scheduler variant worth covering.
    fn variants() -> Vec<(&'static str, ParTuning)> {
        vec![
            ("stealing", ParTuning::default()),
            (
                "static",
                ParTuning {
                    stealing: false,
                    ..ParTuning::default()
                },
            ),
            (
                "stealing-bounded",
                ParTuning {
                    channel_capacity: Some(4),
                    batch_size: 3,
                    ..ParTuning::default()
                },
            ),
            (
                "static-bounded",
                ParTuning {
                    stealing: false,
                    channel_capacity: Some(4),
                    batch_size: 3,
                    ..ParTuning::default()
                },
            ),
            (
                "stealing-spill",
                ParTuning {
                    spill_threshold: Some(2),
                    batch_size: 1,
                    ..ParTuning::default()
                },
            ),
        ]
    }

    #[test]
    fn delivers_every_message_exactly_once() {
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(1)
                .with_workers(4)
                .with_tuning(tuning)
                .unwrap();
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(e, 0, s, 0, ChannelConfig::lan());
            for i in 0..500i64 {
                b.inject(0, e, 0, Message::data([i]));
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 500, "{name}");
            assert_eq!(stats.messages_delivered, 1_000, "{name}"); // 500 at echo + 500 at sink
            let expected: std::collections::BTreeSet<Message> =
                (0..500i64).map(|i| Message::data([i])).collect();
            assert_eq!(sink.message_set(), expected, "{name}");
        }
    }

    #[test]
    fn single_wire_preserves_send_order() {
        // One producer, one sink, activations migrating between workers:
        // per-wire FIFO must hold whatever the thread interleaving — also
        // under bounded channels, where senders park mid-stream.
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(3)
                .with_workers(2)
                .with_tuning(tuning)
                .unwrap()
                .with_batch_size(7)
                .unwrap();
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(e, 0, s, 0, ChannelConfig::lan());
            for i in 0..200i64 {
                b.inject(0, e, 0, Message::data([i]));
            }
            let _ = b.build().run();
            let expected: Vec<Message> = (0..200i64).map(|i| Message::data([i])).collect();
            assert_eq!(sink.messages(), expected, "{name}");
        }
    }

    #[test]
    fn fan_out_reaches_every_wire() {
        let mut b = ParBuilder::new(0).with_workers(3);
        let e = b.add_instance(echo());
        let s1 = CollectorSink::new();
        let s2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(s1.clone()));
        let i2 = b.add_instance(Box::new(s2.clone()));
        let ch = b.add_channel(ChannelConfig::instant());
        b.connect(e, 0, i1, 0, ch);
        b.connect(e, 0, i2, 0, ch);
        b.inject(0, e, 0, Message::data([9i64]));
        let _ = b.build().run();
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn multi_hop_pipeline_terminates() {
        // A chain long enough to bounce between workers repeatedly.
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(5)
                .with_workers(4)
                .with_tuning(tuning)
                .unwrap()
                .with_batch_size(3)
                .unwrap();
            let sink = CollectorSink::new();
            let mut prev = b.add_instance(echo());
            let first = prev;
            for _ in 0..10 {
                let next = b.add_instance(echo());
                b.connect_with(prev, 0, next, 0, ChannelConfig::lan());
                prev = next;
            }
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(prev, 0, s, 0, ChannelConfig::lan());
            for i in 0..50i64 {
                b.inject(0, first, 0, Message::data([i]));
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 50, "{name}");
            assert_eq!(stats.messages_delivered, 50 * 12, "{name}");
        }
    }

    #[test]
    fn duplicates_are_injected_and_counted() {
        let mut b = ParBuilder::new(11).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::instant().with_duplicates(1.0));
        for i in 0..10i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.duplicates, 10);
        assert_eq!(sink.len(), 20);
    }

    #[test]
    fn lossy_channels_still_deliver() {
        let mut b = ParBuilder::new(13).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan().with_loss(1.0));
        for i in 0..25i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.retransmits, 25);
        assert_eq!(sink.len(), 25, "losses are retransmitted, never dropped");
    }

    #[test]
    fn fault_schedule_is_identical_across_worker_counts() {
        // Per-wire RNG streams: the k-th message on a wire sees the same
        // fault draws whatever the worker count, so aggregate fault counts
        // (and per-wire schedules) reproduce exactly.
        let run = |workers: usize, stealing: bool| {
            let mut b = ParBuilder::new(99)
                .with_workers(workers)
                .with_stealing(stealing);
            let e = b.add_instance(echo());
            let mid = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(
                e,
                0,
                mid,
                0,
                ChannelConfig::lan().with_loss(0.3).with_duplicates(0.2),
            );
            b.connect_with(mid, 0, s, 0, ChannelConfig::lan().with_duplicates(0.4));
            for i in 0..300i64 {
                b.inject(0, e, 0, Message::data([i]));
            }
            let stats = b.build().run();
            (stats.duplicates, stats.retransmits, sink.messages())
        };
        let baseline = run(1, true);
        assert!(baseline.0 > 0 && baseline.1 > 0, "faults must fire");
        for workers in [2usize, 4] {
            for stealing in [true, false] {
                assert_eq!(
                    run(workers, stealing),
                    baseline,
                    "fault schedule diverged at {workers} workers (stealing={stealing})"
                );
            }
        }
    }

    #[test]
    fn ticks_fire_and_terminate() {
        struct Ticker {
            fired: Arc<AtomicU64>,
        }
        impl Component for Ticker {
            fn on_message(&mut self, _: usize, _: Message, ctx: &mut Context) {
                ctx.schedule_tick(5_000);
            }
            fn on_tick(&mut self, _ctx: &mut Context) {
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "ticker"
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut b = ParBuilder::new(0).with_workers(2);
        let t = b.add_instance(Box::new(Ticker {
            fired: fired.clone(),
        }));
        b.inject(0, t, 0, Message::Eos);
        let stats = b.build().run();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(stats.events_processed, 2); // delivery + tick
    }

    #[test]
    fn empty_run_terminates() {
        let mut b = ParBuilder::new(0).with_workers(2);
        let _ = b.add_instance(echo());
        let stats = b.build().run();
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn per_instance_stats_cover_all_instances() {
        let mut b = ParBuilder::new(2).with_workers(3);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan());
        for i in 0..7i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.per_instance.len(), 2);
        assert_eq!(stats.per_instance[0].name, "echo");
        assert_eq!(stats.per_instance[0].processed, 7);
        assert_eq!(stats.per_instance[1].processed, 7);
        assert_eq!(stats.per_worker.len(), 3);
        let worker_events: u64 = stats.per_worker.iter().map(|w| w.events).sum();
        assert_eq!(worker_events, stats.events_processed);
    }

    #[test]
    fn builder_validation_returns_typed_errors() {
        assert_eq!(
            ParBuilder::new(0).with_batch_size(0).err(),
            Some(ParConfigError::ZeroBatchSize)
        );
        assert_eq!(
            ParBuilder::new(0).with_channel_capacity(0).err(),
            Some(ParConfigError::ZeroChannelCapacity)
        );
        assert_eq!(
            ParBuilder::new(0).with_spill_threshold(0).err(),
            Some(ParConfigError::ZeroSpillThreshold)
        );
        assert_eq!(
            ParBuilder::new(0)
                .with_tuning(ParTuning {
                    batch_size: 0,
                    ..ParTuning::default()
                })
                .err(),
            Some(ParConfigError::ZeroBatchSize)
        );
        assert!(ParBuilder::new(0).with_batch_size(1).is_ok());
        assert_eq!(
            ParConfigError::ZeroBatchSize.to_string(),
            "batch size must be at least 1"
        );
    }

    #[test]
    fn bounded_channels_backpressure_without_deadlock() {
        // A fast fan-in into one slow-ish consumer with a tiny capacity:
        // the bound must hold (up to the documented escape) and the run
        // must still quiesce with nothing lost.
        let mut b = ParBuilder::new(8)
            .with_workers(4)
            .with_channel_capacity(2)
            .unwrap()
            .with_batch_size(1)
            .unwrap();
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        for p in 0..3 {
            let e = b.add_instance(echo());
            b.connect_with(e, 0, s, 0, ChannelConfig::lan());
            for i in 0..100i64 {
                b.inject(0, e, 0, Message::data([p * 1_000 + i]));
            }
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 300);
        // The sink mailbox may overshoot 2 transiently (three producers
        // race the capacity check under one lock each — and the escape can
        // overshoot), but it must stay far below the unbounded case (300).
        assert!(
            stats.max_mailbox_depth
                <= 2 + 3
                    + stats
                        .per_worker
                        .iter()
                        .map(|w| w.overflow_sends)
                        .sum::<u64>() as usize,
            "mailbox depth {} exceeds the bound plus the accounted escapes",
            stats.max_mailbox_depth
        );
    }

    #[test]
    fn self_loop_with_bounded_capacity_terminates() {
        // An instance that forwards to itself can never park on its own
        // mailbox (only it can drain it): the escape must kick in.
        let mut b = ParBuilder::new(4)
            .with_workers(1)
            .with_channel_capacity(1)
            .unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let looper = b.add_instance(Box::new(FnComponent::new(
            "looper",
            move |_, msg: Message, ctx: &mut Context| {
                if let Some(t) = msg.as_data() {
                    let v = t.get(0).and_then(crate::value::Value::as_int).unwrap();
                    c2.fetch_add(1, Ordering::SeqCst);
                    if v > 0 {
                        ctx.emit(0, Message::data([v - 1]));
                    }
                }
            },
        )));
        b.connect_with(looper, 0, looper, 0, ChannelConfig::instant());
        b.inject(0, looper, 0, Message::data([50i64]));
        let _ = b.build().run();
        assert_eq!(counter.load(Ordering::SeqCst), 51);
    }

    /// A deliberately CPU-expensive echo, so runs last long enough for
    /// idle workers to wake up and participate even on one core.
    fn heavy_echo() -> Box<dyn Component> {
        Box::new(FnComponent::new(
            "heavy-echo",
            |_, msg, ctx: &mut Context| {
                let mut x = 0x9e37_79b9_7f4a_7c15u64;
                for i in 0..20_000u64 {
                    x = std::hint::black_box(x ^ i).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    x ^= x >> 31;
                }
                std::hint::black_box(x);
                ctx.emit(0, msg);
            },
        ))
    }

    #[test]
    fn stealing_balances_a_skewed_workload() {
        // 8 instances with wildly uneven message counts on 4 workers:
        // static sharding leaves whole shards idle while the hot shard
        // grinds; stealing spreads activations across workers.
        let run = |stealing: bool| {
            let mut b = ParBuilder::new(17)
                .with_workers(4)
                .with_stealing(stealing)
                .with_batch_size(4)
                .unwrap();
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            for m in 0..8usize {
                let e = b.add_instance(heavy_echo());
                b.connect_with(e, 0, s, 0, ChannelConfig::lan());
                // Instance 0 gets the lion's share.
                let n = if m == 0 { 600 } else { 25 };
                for i in 0..n {
                    b.inject(0, e, 0, Message::data([i as i64]));
                }
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 600 + 7 * 25);
            stats
        };
        let stealing = run(true);
        let static_ = run(false);
        assert!(
            stealing.total_steals() > 0,
            "skew must trigger steals: {:?}",
            stealing.per_worker
        );
        assert!(
            stealing.balance() < static_.balance(),
            "stealing balance {:.2} must beat static {:.2}",
            stealing.balance(),
            static_.balance()
        );
    }
}
