//! The multi-worker parallel executor.
//!
//! Where [`crate::sim`] *models* concurrency in virtual time, this backend
//! *runs* it: component instances execute on OS worker threads, messages
//! travel through per-instance FIFO mailboxes, and delivery order across
//! producers is whatever the scheduler produces. This is exactly the
//! execution regime the Blazes analysis reasons about — confluent
//! (order-insensitive) topologies reach the same final state as any
//! sequential interleaving, which the differential tests assert against the
//! seeded simulator.
//!
//! # Scheduling
//!
//! The runtime is an actor-style scheduler with two modes, selected by
//! [`ParBuilder::with_stealing`]:
//!
//! * **Work stealing** (default). Every instance has a mailbox and an
//!   atomic *scheduled* flag. A sender that transitions the flag makes the
//!   instance runnable by pushing its id onto the sending worker's local
//!   deque (or the global injector, for external injections). Workers pop
//!   their own deque first, then the injector, then steal from siblings
//!   (Chase-Lev-style deques via the `crossbeam-deque` shim). A runnable
//!   instance is drained up to [`ParBuilder::with_batch_size`] messages per
//!   activation, then rescheduled if work remains — so a hot instance's
//!   activations migrate to whichever worker is free, and skewed workloads
//!   balance dynamically. [`ParBuilder::with_spill_threshold`] bounds the
//!   local deque: beyond it, half spills to the injector for idle workers.
//! * **Static sharding** (the pre-stealing scheduler, kept as a baseline).
//!   Instance `i` is only ever run by worker `i % workers`; runnable ids go
//!   to the owner's dedicated queue and are never stolen.
//!
//! # The lock-free hot path
//!
//! The steady-state message path acquires **zero mutexes**:
//!
//! * **Mailboxes** are Vyukov-style MPSC queues ([`mpsc_queue`]): a send
//!   is one node allocation plus one CAS on the queue tail (retries under
//!   producer contention are counted in [`WorkerStats::push_retries`]);
//!   a drain moves up to [`ParBuilder::with_batch_size`] messages into a
//!   worker-local buffer with plain loads/stores and settles the shared
//!   length counter with a single RMW for the whole batch. The mailbox's
//!   single-consumer contract is exactly the *scheduled flag* exclusivity
//!   the runtime already maintains — whichever worker owns the flag is
//!   the one consumer.
//! * **Instance state** is an `UnsafeCell` guarded by that same flag (the
//!   previous `Mutex<Cell>` was uncontended by protocol; now the protocol
//!   is the whole story, checked by a debug-build owner assert). The flag
//!   handoff is `SeqCst`, and task transfer through the deques carries
//!   the release/acquire edge, so cell writes publish to the next owner.
//! * **Run queues** are real Chase–Lev deques and a block-based lock-free
//!   injector (see the rewritten `crossbeam-deque` shim) — push, pop and
//!   steal are all atomic-only.
//! * **Park/unpark** is an eventcount: a worker *announces* intent to
//!   sleep (waiter count + sequence ticket), *re-checks* the run queues
//!   and the quiescence scan, and only then parks on the Condvar; a
//!   producer bumps the sequence and takes the Condvar lock only when the
//!   waiter count says somebody is actually parked. The `SeqCst`
//!   announce/re-check crossover guarantees no work is ever *stranded* by
//!   a park, without the send path ever touching the idle lock (see
//!   `idle_park` for the precise argument; a missed *steal opportunity*
//!   against a sibling's deque costs at most one `PARK_TIMEOUT`, since
//!   the sibling drains its own deque anyway).
//!
//! Every remaining `Mutex` acquisition (idle parks, full-mailbox parks)
//! is counted per run in [`ParStats::slow_path_locks`]; tests assert the
//! count is fully accounted for by parking events, not by messages.
//! Deque-side cold-path locks (buffer retirement on growth) are counted
//! by [`crossbeam_deque::lock_acquisitions`] and pinned by that crate's
//! own tests.
//!
//! # Backpressure
//!
//! [`ParBuilder::with_channel_capacity`] bounds every mailbox. A sender
//! whose destination is full *parks* until the destination drains, instead
//! of growing the queue without bound. The capacity check reads the
//! mailbox's atomic length counter — no lock on the send path; the parked
//! wait itself is the slow path and uses a per-mailbox Condvar that
//! drains only notify when someone is registered as waiting. Because
//! check and push are no longer one critical section, concurrent senders
//! can transiently overshoot the bound by at most one message each — the
//! bound is exact in steady state, soft by `senders` under a photo-finish
//! race. Two rules keep parking deadlock-free:
//!
//! 1. a worker never parks on a mailbox only it can drain (its own current
//!    instance, or — under static sharding — any instance of its shard);
//! 2. a worker never parks if it would be the last runnable worker: it
//!    overshoots the capacity instead (counted in
//!    [`WorkerStats::overflow_sends`]).
//!
//! So at least one worker is always runnable and quiescence is reached even
//! for cyclic topologies; the bound is strict in steady state and soft only
//! in the escape cases.
//!
//! # Guarantees
//!
//! * **Per-wire FIFO — always.** The scheduled flag makes instance
//!   execution exclusive: however activations migrate between workers, a
//!   producer's emissions are routed into destination mailboxes *before*
//!   the producer can be re-activated elsewhere, and mailboxes are FIFO.
//!   Seal and EOS punctuations therefore never overtake the records they
//!   cover — the invariant the sealing protocol needs (paper Section V-B1)
//!   — including under bounded channels, where a parked send completes
//!   before the producer proceeds. Note this is *stronger* than the
//!   simulator for channels configured with [`ChannelConfig::with_fifo`]
//!   `(false)`: single-wire reordering is not reproduced here.
//! * **At-least-once faults, with reproducible schedules.** Channel
//!   `duplicate_prob` injects duplicate deliveries and `loss_prob` counts
//!   a retransmission (the message is still delivered — losses are
//!   retried, as in the simulator). Fault draws come from *per-wire*
//!   seeded RNG streams: the k-th *send* on a wire sees the same
//!   loss/duplicate decisions whatever the worker count or thread
//!   interleaving (unlike the per-worker RNGs this replaced, where even
//!   the decision sequence depended on thread timing). Which *record*
//!   occupies position k is deterministic only where the producer's
//!   emission order is — always true for single-input pipelines, but at a
//!   fan-in component the interleaving of its inputs still decides which
//!   record each draw lands on.
//! * **Quiescence.** `run` returns once every injected and derived message
//!   has been processed, detected by a global in-flight counter.
//!
//! # Time-warp speculation
//!
//! With [`ParTuning::with_speculation`] the backend runs an optimistic
//! *time-warp mode* (Jefferson's virtual time, scoped to seal gates): a
//! coordination gate that would block awaiting punctuations instead
//! forwards tagged with a **speculation epoch**; the first tagged delivery
//! snapshots the consumer's state ([`Component::snapshot`]), and from then
//! on the consumer is *tainted* — everything it emits carries the epoch,
//! so the taint cascades transitively. When the gate learns the
//! speculation was right it **commits** the epoch (snapshots are dropped,
//! state is already correct); when a late event violates it, it **aborts**
//! (`Context::resolve_speculation(epoch, false)`): every tainted consumer
//! restores its snapshot, unprocessed tagged mail is discarded, and the
//! committed inputs it absorbed while tainted are replayed
//! deterministically from a per-instance log. Components that do not
//! implement `snapshot` never speculate — their tagged deliveries are
//! *deferred* until the epoch resolves, which degrades to blocking but
//! stays correct. The epoch registry is one mutex, but it is off the hot
//! path: each cell caches the per-epoch status `Arc`, so steady-state
//! checks are a single atomic load (acquisitions are counted separately
//! in [`ParStats::speculation_locks`]). CALM pays off mechanically here:
//! confluent topologies get no gates, so they never speculate and never
//! roll back — `tests/speculation.rs` asserts exactly that.
//!
//! `Context::now` under this backend is a per-instance event ordinal, not
//! virtual microseconds: it orders the events one instance observed but is
//! not comparable across instances.

use crate::backend::{ChannelId, ExecutorBuilder, PortId};
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::metrics::{event_balance, InstanceStats, WorkerStats};
use crate::sim::{InstanceId, Time};
use blazes_obs::{EventKind, Histogram};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as TaskQueue};
use mpsc_queue::MpscQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An eventcount: the two-phase announce → re-check → park protocol that
/// keeps the idle Condvar off the send path.
///
/// * A would-be sleeper calls [`EventCount::prepare`] (registers as a
///   waiter and snapshots the sequence), re-checks its wake condition,
///   and either [`EventCount::cancel`]s or [`EventCount::wait`]s.
/// * A waker calls [`EventCount::notify`]: one sequence bump plus one
///   waiter-count load — it takes the lock and signals only when someone
///   is actually registered.
///
/// The `SeqCst` crossover (sleeper: waiters += 1 *then* re-check; waker:
/// publish work *then* load waiters) guarantees at least one side sees
/// the other, and the sequence ticket catches the remaining window
/// between re-check and sleep: `wait` refuses to block if the sequence
/// moved past the snapshot.
struct EventCount {
    seq: AtomicU64,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// Lock acquisitions this eventcount performed (per-run accounting
    /// for [`ParStats::slow_path_locks`]).
    locks: AtomicU64,
}

impl EventCount {
    fn new() -> Self {
        EventCount {
            seq: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            locks: AtomicU64::new(0),
        }
    }

    /// Announce intent to sleep; returns the ticket to pass to `wait`.
    fn prepare(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        self.seq.load(Ordering::SeqCst)
    }

    /// Withdraw an announced intent (the re-check found work).
    fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Park until notified (or `timeout`), unless the sequence already
    /// moved past `ticket`. Consumes the `prepare` registration.
    fn wait(&self, ticket: u64, timeout: Duration) {
        self.locks.fetch_add(1, Ordering::Relaxed);
        let guard = self
            .lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.seq.load(Ordering::SeqCst) == ticket {
            let _ = self
                .cv
                .wait_timeout(guard, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Publish an event. Returns `true` when a parked (or parking) waiter
    /// was actually signaled — the slow path; with no waiters this is a
    /// single load, no RMW and no lock.
    ///
    /// The sequence bump lives inside the waiter branch: a sleeper
    /// registers in `waiters` *before* reading its ticket, so a notify
    /// whose load sees zero waiters is `SeqCst`-ordered before that
    /// registration — and the sleeper's subsequent re-check is ordered
    /// after it, guaranteeing the re-check observes the published work.
    /// Only a registered waiter can be in the ticket-to-sleep window, and
    /// for that case the bump (plus the locked notify) closes it.
    fn notify(&self) -> bool {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            self.seq.fetch_add(1, Ordering::SeqCst);
            self.locks.fetch_add(1, Ordering::Relaxed);
            let guard = self
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.cv.notify_all();
            drop(guard);
            true
        } else {
            false
        }
    }
}

/// Default number of messages drained per instance activation.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// How long a parked thread sleeps before re-checking its wake condition.
/// Parks are also woken eagerly; the timeout only bounds lost-wakeup races.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Error returned by [`ParBuilder`] setters on invalid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParConfigError {
    /// Batch size must be at least 1.
    ZeroBatchSize,
    /// Channel capacity must be at least 1.
    ZeroChannelCapacity,
    /// Spill threshold must be at least 1.
    ZeroSpillThreshold,
}

impl fmt::Display for ParConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParConfigError::ZeroBatchSize => f.write_str("batch size must be at least 1"),
            ParConfigError::ZeroChannelCapacity => {
                f.write_str("channel capacity must be at least 1")
            }
            ParConfigError::ZeroSpillThreshold => f.write_str("spill threshold must be at least 1"),
        }
    }
}

impl Error for ParConfigError {}

/// Scheduler selection for a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Instance `i` is pinned to worker `i % workers` (the pre-stealing
    /// scheduler, kept as a measurable baseline).
    StaticShard,
    /// Dynamic load balancing: runnable instances migrate to idle workers.
    WorkStealing,
}

/// Tuning knobs for the parallel executor, bundled so higher layers (the
/// Storm topology builder, benches) can thread them through without
/// depending on every individual setter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParTuning {
    /// Use the work-stealing scheduler (`false` = static sharding).
    pub stealing: bool,
    /// Messages drained per instance activation.
    pub batch_size: usize,
    /// Mailbox capacity; `None` = unbounded.
    pub channel_capacity: Option<usize>,
    /// Local-deque spill threshold; `None` = never spill.
    pub spill_threshold: Option<usize>,
    /// Time-warp mode: speculative gates forward past missing
    /// punctuations, consumers checkpoint and roll back on violation
    /// (see the module docs' speculation section).
    pub speculation: bool,
    /// Realize modeled service times as wall-clock spins: a processed
    /// event burns `service × virtual_service_ns` nanoseconds, making
    /// par-backend latency curves magnitude-comparable to the
    /// simulator's virtual-time predictions. `None` (default) ignores
    /// service times entirely.
    pub virtual_service_ns: Option<u64>,
}

impl ParTuning {
    /// Enable (or disable) time-warp speculation.
    #[must_use]
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Set the wall-clock scale for modeled service times (nanoseconds
    /// per virtual time unit; `1_000` makes one virtual microsecond cost
    /// one wall-clock microsecond).
    #[must_use]
    pub fn with_virtual_service_ns(mut self, ns: Option<u64>) -> Self {
        self.virtual_service_ns = ns;
        self
    }
}

impl Default for ParTuning {
    fn default() -> Self {
        ParTuning {
            stealing: true,
            batch_size: DEFAULT_BATCH_SIZE,
            channel_capacity: None,
            spill_threshold: None,
            speculation: false,
            virtual_service_ns: None,
        }
    }
}

/// One mailbox entry. `epoch` 0 means committed; a nonzero epoch marks the
/// item speculative until that epoch resolves. `Clone` exists for the
/// replay log of time-warp mode.
#[derive(Debug, Clone)]
enum MailItem {
    Deliver {
        port: usize,
        msg: Message,
        epoch: u64,
        /// Tracer timestamp of the source injection this delivery descends
        /// from (0 = tracing was off at injection): the source-to-sink
        /// latency stamp. Emissions inherit the triggering delivery's
        /// stamp, so the histogram sees the full pipeline latency.
        born: u64,
    },
    Tick {
        epoch: u64,
    },
    /// End-of-run drain signal ([`Component::on_drain`]): sent to every
    /// instance by the never-sealed-session rescue when the run has
    /// wedged on speculation that can no longer resolve on its own.
    Drain,
}

impl MailItem {
    fn epoch(&self) -> u64 {
        match self {
            MailItem::Deliver { epoch, .. } | MailItem::Tick { epoch } => *epoch,
            MailItem::Drain => 0,
        }
    }
}

/// Speculation-epoch lifecycle states (stored in a shared `AtomicU8` so
/// consumers can poll without the registry lock).
const EPOCH_OPEN: u8 = 0;
const EPOCH_COMMITTED: u8 = 1;
const EPOCH_ABORTED: u8 = 2;

/// One instance's open speculation: the checkpoint to roll back to, the
/// epoch that tainted it, and the committed inputs absorbed while tainted
/// (replayed against the restored checkpoint after an abort).
struct InstSpec {
    epoch: u64,
    status: Arc<AtomicU8>,
    snapshot: Box<dyn Any + Send>,
    log: Vec<MailItem>,
}

/// Registry entry for one speculation epoch.
#[derive(Default)]
struct EpochEntry {
    status: Arc<AtomicU8>,
    /// Instances tainted by (or deferring on) this epoch; rescheduled
    /// when it resolves so rollback/drain happens promptly.
    participants: Vec<usize>,
}

/// Shared speculation state (present only in time-warp mode). The
/// registry mutex is off the hot path: cells cache the per-epoch status
/// `Arc`, so steady-state epoch checks are one atomic load; the lock is
/// taken once per new `(instance, epoch)` pair and once per resolution —
/// counted here, separately from [`ParStats::slow_path_locks`], whose
/// identity the parking tests pin.
struct SpecShared {
    epochs: Mutex<HashMap<u64, EpochEntry>>,
    opened: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    locks: AtomicU64,
}

impl SpecShared {
    fn new() -> Self {
        SpecShared {
            epochs: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            locks: AtomicU64::new(0),
        }
    }
}

/// A wire resolved for execution: destination plus the fault behavior and
/// the wire's private RNG stream (present only when faults are configured).
struct WireRt {
    dst: usize,
    dst_port: usize,
    loss_prob: f64,
    duplicate_prob: f64,
    rng: Option<StdRng>,
}

/// Mutable per-instance state, owned by whichever worker holds the
/// instance's scheduled flag.
struct Cell {
    component: Box<dyn Component>,
    wires: Vec<Vec<WireRt>>,
    processed: u64,
    now: Time,
    /// Modeled service time per event (realized only when
    /// [`ParTuning::virtual_service_ns`] is set).
    service: Time,
    /// Open speculation, if this instance is currently tainted.
    spec: Option<InstSpec>,
    /// Speculative deliveries waiting for their epoch to resolve (kept
    /// charged against the in-flight counter so quiescence waits).
    deferred: VecDeque<MailItem>,
    /// Cached epoch-status handles: repeat checks skip the registry lock.
    epoch_cache: HashMap<u64, Arc<AtomicU8>>,
}

/// The `UnsafeCell` wrapper that replaces the old `Mutex<Cell>`: the
/// scheduled-flag protocol already makes instance execution exclusive
/// (exactly one worker holds the flag, and the `SeqCst` flag handoff plus
/// the release/acquire task transfer through the deques publish cell
/// writes to the next owner), so the per-activation lock bought nothing
/// but a hot-path atomic RMW pair. Debug builds keep an owner flag that
/// panics if the protocol is ever violated.
struct InstanceCell {
    cell: UnsafeCell<Cell>,
    #[cfg(debug_assertions)]
    held: AtomicBool,
}

// SAFETY: access is serialized by the mailbox scheduled flag (see type
// docs); the cell is only touched by the worker that owns the flag.
unsafe impl Sync for InstanceCell {}

impl InstanceCell {
    fn new(cell: Cell) -> Self {
        InstanceCell {
            cell: UnsafeCell::new(cell),
            #[cfg(debug_assertions)]
            held: AtomicBool::new(false),
        }
    }

    /// Assert exclusive ownership for the duration of an activation
    /// (debug builds only).
    fn claim(&self) {
        #[cfg(debug_assertions)]
        assert!(
            self.held
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok(),
            "scheduled-flag protocol violated: concurrent instance activation"
        );
    }

    fn release(&self) {
        #[cfg(debug_assertions)]
        self.held.store(false, Ordering::SeqCst);
    }

    fn into_inner(self) -> Cell {
        self.cell.into_inner()
    }
}

/// A lock-free mailbox: the MPSC queue plus the scheduling and
/// backpressure state around it. Steady-state sends and drains touch only
/// atomics; the `space` eventcount exists solely for senders parked on a
/// full bounded mailbox — it reuses the exact announce → re-check → park
/// protocol the idle layer uses, so there is one parking implementation
/// to audit, and its Condvar is touched only when a sender is registered.
struct Mailbox {
    queue: MpscQueue<MailItem>,
    /// True while the instance is in a run queue or being executed.
    scheduled: AtomicBool,
    /// Parking lot for senders waiting on a full mailbox.
    space: EventCount,
    /// High-water mark of the queue length (stats).
    depth_max: AtomicUsize,
    /// Time-warp wake hint: an epoch this instance participates in has
    /// resolved. Mirrors the mailbox's own release protocol — the
    /// resolver sets it *before* its scheduled-flag CAS, the owner clears
    /// the flag *before* re-checking it — so a resolution can never
    /// strand a tainted or deferring instance.
    spec_dirty: AtomicBool,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: MpscQueue::new(),
            scheduled: AtomicBool::new(false),
            space: EventCount::new(),
            depth_max: AtomicUsize::new(0),
            spec_dirty: AtomicBool::new(false),
        }
    }

    /// Lock-free push. Returns the tail-CAS retry count (contention
    /// signal).
    fn push(&self, item: MailItem) -> u64 {
        let retries = self.queue.push(item);
        // Racy max update: stats only.
        let len = self.queue.len();
        if len > self.depth_max.load(Ordering::Relaxed) {
            self.depth_max.store(len, Ordering::Relaxed);
        }
        retries
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Park the calling thread until the queue may have space again (or
    /// `timeout`). The eventcount's announce → re-check sequence means a
    /// drain landing between our fullness check and the park either sees
    /// our registration (and notifies) or is seen by the re-check.
    fn park_for_space(&self, cap: usize, timeout: Duration) {
        let ticket = self.space.prepare();
        if self.queue.len() >= cap {
            self.space.wait(ticket, timeout);
        } else {
            self.space.cancel();
        }
    }

    /// Wake parked senders if any are registered (slow path only).
    fn notify_space(&self) {
        let _ = self.space.notify();
    }
}

struct Slot {
    cell: InstanceCell,
    mailbox: Mailbox,
}

/// A cache-line-isolated atomic, so per-worker counters do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedI64(AtomicI64);

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Sharded in-flight accounting.
///
/// The predecessor was a single `AtomicI64` touched with a SeqCst RMW per
/// send *and* per processed message — a contended-line hotspot at high
/// worker counts (the ROADMAP item this replaces). Now each worker owns
/// one padded cell (cell `workers` belongs to the injecting coordinator
/// thread) and a monotone *send epoch*:
///
/// * before any of an event's emissions become visible, the processing
///   worker adds their count to **its own** cell and bumps its epoch —
///   uncontended RMWs on a private line;
/// * after draining a batch, it subtracts the number of messages it
///   consumed from its own cell, once per activation instead of once per
///   message.
///
/// The global sum is exact whenever all updates have landed; a worker
/// that runs out of work detects quiescence by [`InFlight::quiescent`]:
/// read all epochs, sum all cells, re-read the epochs. A non-atomic scan
/// can only be fooled into a false zero by *missing* an increment whose
/// matching decrement it *saw* — but the decrement happens causally after
/// the increment (through the mailbox push), so the missed increment (and
/// its epoch bump) must fall inside the scan window, and the epoch
/// re-read rejects the scan. Sum ≠ 0 or changed epochs simply mean "not
/// quiescent yet"; the parked worker re-scans on its next timeout.
struct InFlight {
    cells: Vec<PaddedI64>,
    epochs: Vec<PaddedU64>,
}

impl InFlight {
    fn new(shards: usize, injected: i64) -> Self {
        let cells: Vec<PaddedI64> = (0..shards).map(|_| PaddedI64::default()).collect();
        // External injections are pre-charged to the coordinator's cell.
        cells[shards - 1].0.store(injected, Ordering::SeqCst);
        InFlight {
            cells,
            epochs: (0..shards).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// Charge `n` sends to `shard` *before* the messages become visible.
    fn charge(&self, shard: usize, n: i64) {
        self.cells[shard].0.fetch_add(n, Ordering::SeqCst);
        self.epochs[shard].0.fetch_add(1, Ordering::SeqCst);
    }

    /// Settle `n` processed messages against `shard`.
    fn settle(&self, shard: usize, n: i64) {
        self.cells[shard].0.fetch_sub(n, Ordering::SeqCst);
    }

    /// Validated scan for `sum == expected` (see type docs for the
    /// argument; `expected = 0` is quiescence, a nonzero `expected` is
    /// the stuck-run check — every remaining charge is a parked
    /// deferral).
    fn settled_at(&self, expected: i64) -> bool {
        let read_epochs = |buf: &mut Vec<u64>| {
            buf.clear();
            buf.extend(self.epochs.iter().map(|e| e.0.load(Ordering::SeqCst)));
        };
        let mut before = Vec::with_capacity(self.epochs.len());
        let mut after = Vec::with_capacity(self.epochs.len());
        for _ in 0..2 {
            read_epochs(&mut before);
            let sum: i64 = self.cells.iter().map(|c| c.0.load(Ordering::SeqCst)).sum();
            if sum != expected {
                return false;
            }
            read_epochs(&mut after);
            if before == after {
                return true;
            }
        }
        false
    }
}

struct Counters {
    in_flight: InFlight,
    events: AtomicU64,
    deliveries: AtomicU64,
    duplicates: AtomicU64,
    retransmits: AtomicU64,
}

/// State shared by all workers and the coordinating thread.
struct Shared {
    slots: Vec<Slot>,
    mode: SchedulerMode,
    workers: usize,
    batch_size: usize,
    capacity: Option<usize>,
    spill_threshold: usize,
    /// Global run queue (work-stealing mode; also external injections).
    injector: Injector<usize>,
    /// Per-worker run queues (static mode).
    static_queues: Vec<Injector<usize>>,
    /// Steal handles to every worker's local deque (work-stealing mode).
    stealers: Vec<Stealer<usize>>,
    counters: Counters,
    /// Speculation registry; `Some` only in time-warp mode.
    spec: Option<SpecShared>,
    /// Deliveries currently parked in some cell's deferred queue (each
    /// kept charged in `in_flight`). Maintained only in time-warp mode;
    /// the stuck-run check compares the in-flight sum against it.
    deferred: AtomicI64,
    /// Never-sealed-session rescue ladder: 0 = untried, 1 = drain pass
    /// sent, 2 = hard abort done. Reset to 0 by any epoch resolution
    /// (progress restarts the ladder for a later wedge).
    rescue: AtomicU8,
    /// Rescue passes initiated (stats).
    rescue_passes: AtomicU64,
    /// Wall-clock scale for modeled service times, if realized.
    virtual_ns: Option<u64>,
    done: AtomicBool,
    /// Workers currently runnable (not parked). A sender refuses to park
    /// when it would drop this to zero — the no-deadlock escape.
    active: AtomicUsize,
    /// Idle-worker parking: eventcount keeps the Condvar slow-path only.
    idle: EventCount,
}

impl Shared {
    /// Mark the run finished and wake every parked thread.
    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        let _ = self.idle.notify();
        for slot in &self.slots {
            slot.mailbox.notify_space();
        }
    }

    /// Wake a parked worker if any announced intent to sleep. Returns
    /// whether a waiter was actually signaled.
    ///
    /// The eventcount notifies *all* parked workers, not one: under
    /// static sharding the task is only runnable by its owner, which may
    /// not be the thread a single wake would pick.
    fn wake(&self) -> bool {
        self.idle.notify()
    }

    fn owner_of(&self, inst: usize) -> usize {
        inst % self.workers
    }

    /// Push a mailbox item from the coordinating (non-worker) thread,
    /// honoring capacity by waiting — workers guarantee progress, so the
    /// wait always ends.
    fn external_push(&self, dst: usize, item: MailItem) {
        let mb = &self.slots[dst].mailbox;
        if let Some(cap) = self.capacity {
            while mb.queue.len() >= cap && !self.done.load(Ordering::SeqCst) {
                mb.park_for_space(cap, PARK_TIMEOUT);
            }
        }
        let _ = mb.push(item);
        if mb
            .scheduled
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            match self.mode {
                SchedulerMode::StaticShard => self.static_queues[self.owner_of(dst)].push(dst),
                SchedulerMode::WorkStealing => self.injector.push(dst),
            }
            self.wake();
        }
    }

    /// Realize a modeled service time as a wall-clock spin, if configured.
    fn burn_service(&self, service: Time) {
        let Some(ns) = self.virtual_ns else { return };
        if service == 0 {
            return;
        }
        let dur = Duration::from_nanos(service.saturating_mul(ns));
        let end = Instant::now() + dur;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

/// A wire as the builder records it: `(dst, dst_port, channel, wire_id)`.
type WireSpec = (usize, usize, usize, u64);

/// Builder for a parallel run: add instances, wire ports, inject inputs —
/// the same assembly surface as [`crate::sim::SimBuilder`].
pub struct ParBuilder {
    components: Vec<Box<dyn Component>>,
    /// Outgoing wires, per instance, per output port.
    wires: Vec<Vec<Vec<WireSpec>>>,
    /// Modeled service time per instance (realized only when
    /// [`ParTuning::virtual_service_ns`] is set).
    service: Vec<Time>,
    channels: Vec<ChannelConfig>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    seed: u64,
    next_wire_id: u64,
    workers: Option<usize>,
    tuning: ParTuning,
}

impl ParBuilder {
    /// Start a new parallel run description. `seed` drives the per-wire
    /// fault-injection RNG streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ParBuilder {
            components: Vec::new(),
            wires: Vec::new(),
            service: Vec::new(),
            channels: Vec::new(),
            injected: Vec::new(),
            seed,
            next_wire_id: 0,
            workers: None,
            tuning: ParTuning::default(),
        }
    }

    /// Pin the worker-thread count (default: available parallelism, capped
    /// at 8, never more than the instance count).
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Set the per-activation drain batch size (default
    /// [`DEFAULT_BATCH_SIZE`]). Larger batches amortize scheduling; smaller
    /// ones migrate hot instances between workers more eagerly.
    ///
    /// # Errors
    /// [`ParConfigError::ZeroBatchSize`] when `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Result<Self, ParConfigError> {
        if batch_size == 0 {
            return Err(ParConfigError::ZeroBatchSize);
        }
        self.tuning.batch_size = batch_size;
        Ok(self)
    }

    /// Select the scheduler: `true` (default) for work stealing, `false`
    /// for the static `id % workers` sharding baseline.
    #[must_use]
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.tuning.stealing = stealing;
        self
    }

    /// Enable (or disable) time-warp speculation for this run. See the
    /// module docs' speculation section.
    #[must_use]
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.tuning.speculation = on;
        self
    }

    /// Bound every mailbox to `capacity` messages; a full destination parks
    /// the sender (backpressure) instead of queueing without limit. See the
    /// module docs for the no-deadlock escape that makes the bound soft in
    /// pathological cases.
    ///
    /// # Errors
    /// [`ParConfigError::ZeroChannelCapacity`] when `capacity` is zero.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Result<Self, ParConfigError> {
        if capacity == 0 {
            return Err(ParConfigError::ZeroChannelCapacity);
        }
        self.tuning.channel_capacity = Some(capacity);
        Ok(self)
    }

    /// Spill half of a worker's local run queue to the global injector when
    /// it grows beyond `threshold`, so idle workers can pick the work up
    /// without stealing (work-stealing mode only).
    ///
    /// # Errors
    /// [`ParConfigError::ZeroSpillThreshold`] when `threshold` is zero.
    pub fn with_spill_threshold(mut self, threshold: usize) -> Result<Self, ParConfigError> {
        if threshold == 0 {
            return Err(ParConfigError::ZeroSpillThreshold);
        }
        self.tuning.spill_threshold = Some(threshold);
        Ok(self)
    }

    /// Apply a [`ParTuning`] bundle.
    ///
    /// # Errors
    /// The same validation errors as the individual setters.
    pub fn with_tuning(mut self, tuning: ParTuning) -> Result<Self, ParConfigError> {
        if tuning.batch_size == 0 {
            return Err(ParConfigError::ZeroBatchSize);
        }
        if tuning.channel_capacity == Some(0) {
            return Err(ParConfigError::ZeroChannelCapacity);
        }
        if tuning.spill_threshold == Some(0) {
            return Err(ParConfigError::ZeroSpillThreshold);
        }
        self.tuning = tuning;
        Ok(self)
    }

    /// Add a component instance.
    pub fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let id = InstanceId(self.components.len());
        self.components.push(component);
        self.wires.push(Vec::new());
        self.service.push(0);
        id
    }

    /// Record the modeled service time for `id`. Ignored unless
    /// [`ParTuning::virtual_service_ns`] realizes it as a wall-clock
    /// spin per processed event.
    pub fn set_service_time(&mut self, id: InstanceId, service: Time) {
        self.service[id.0] = service;
    }

    /// Register a channel configuration and return its handle for reuse.
    pub fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        self.channels.push(cfg);
        ChannelId(self.channels.len() - 1)
    }

    /// Wire output `out_port` of `from` to input `in_port` of `to` over the
    /// channel registered as `channel`. Wires are numbered in registration
    /// order; the number seeds the wire's fault RNG stream, which is what
    /// makes fault schedules independent of the worker count.
    pub fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        let wire_id = self.next_wire_id;
        self.connect_numbered(from, out_port, to, in_port, channel, wire_id);
    }

    /// Wire with an explicitly assigned wire number. The distributed
    /// backend numbers wires from the *topology-global* assembly counter
    /// (which also counts wires owned by other processes), so a wire's
    /// fault RNG stream is identical no matter which process ends up
    /// running it.
    pub(crate) fn connect_numbered(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
        wire_id: u64,
    ) {
        assert!(channel.0 < self.channels.len(), "unknown channel handle");
        assert!(to.0 < self.components.len(), "unknown destination instance");
        let wires = &mut self.wires[from.0];
        if wires.len() <= out_port.0 {
            wires.resize_with(out_port.0 + 1, Vec::new);
        }
        wires[out_port.0].push((to.0, in_port.0, channel.0, wire_id));
        self.next_wire_id = self.next_wire_id.max(wire_id + 1);
    }

    /// Convenience: wire with a fresh channel config.
    pub fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }

    /// Inject an external message. `at` is an ordering key only (the
    /// parallel backend has no virtual clock): injections are dispatched
    /// in ascending `at`, ties in insertion order — the same order the
    /// simulator's event queue would open with.
    pub fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        self.injected.push((at, to, port.0, msg));
    }

    /// Finalize into a runnable [`ParExecutor`].
    #[must_use]
    pub fn build(mut self) -> ParExecutor {
        // An explicitly pinned count is honored as-is; only the derived
        // default is capped and clamped to the instance count.
        let workers = self
            .workers
            .unwrap_or_else(|| crate::pool::default_workers().min(self.components.len().max(1)));
        // Dispatch order: ascending injection time, insertion order on ties
        // (stable sort), mirroring the simulator's opening event order.
        self.injected.sort_by_key(|&(at, _, _, _)| at);

        let seed = self.seed;
        let channels = self.channels;
        let slots: Vec<Slot> = self
            .components
            .into_iter()
            .zip(self.wires)
            .zip(self.service)
            .map(|((component, ports), service)| {
                let wires = ports
                    .into_iter()
                    .map(|port_wires| {
                        port_wires
                            .into_iter()
                            .map(|(dst, dst_port, channel, wire_id)| {
                                let cfg = &channels[channel];
                                let faulty = cfg.loss_prob > 0.0 || cfg.duplicate_prob > 0.0;
                                WireRt {
                                    dst,
                                    dst_port,
                                    loss_prob: cfg.loss_prob,
                                    duplicate_prob: cfg.duplicate_prob,
                                    rng: faulty.then(|| {
                                        StdRng::seed_from_u64(
                                            seed ^ (wire_id + 1)
                                                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                                        )
                                    }),
                                }
                            })
                            .collect()
                    })
                    .collect();
                Slot {
                    cell: InstanceCell::new(Cell {
                        component,
                        wires,
                        processed: 0,
                        now: 0,
                        service,
                        spec: None,
                        deferred: VecDeque::new(),
                        epoch_cache: HashMap::new(),
                    }),
                    mailbox: Mailbox::new(),
                }
            })
            .collect();

        ParExecutor {
            slots,
            injected: self.injected,
            workers,
            tuning: self.tuning,
        }
    }
}

impl ExecutorBuilder for ParBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        ParBuilder::add_instance(self, component)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        ParBuilder::set_service_time(self, id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        ParBuilder::add_channel(self, cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        ParBuilder::connect(self, from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        ParBuilder::inject(self, at, to, port, msg);
    }
}

/// Aggregate statistics of one parallel run.
#[derive(Debug, Clone)]
pub struct ParStats {
    /// Total events processed (deliveries + ticks).
    pub events_processed: u64,
    /// Messages delivered to instances.
    pub messages_delivered: u64,
    /// Channel-level duplicate deliveries injected.
    pub duplicates: u64,
    /// Channel-level retransmissions counted (message still delivered).
    pub retransmits: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Scheduler the run used.
    pub mode: SchedulerMode,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Per-instance breakdown (`busy_until` is 0: no virtual clock).
    pub per_instance: Vec<InstanceStats>,
    /// Per-worker scheduling breakdown (steals, parks, spills, skew).
    pub per_worker: Vec<WorkerStats>,
    /// High-water mark over all mailbox depths.
    pub max_mailbox_depth: usize,
    /// Slow-path `Mutex` acquisitions this run performed — idle
    /// eventcount waits/notifies plus full-mailbox sender parks and their
    /// wakeups. The steady-state message path contributes zero; tests pin
    /// this to parking activity, not message volume.
    pub slow_path_locks: u64,
    /// Time-warp speculation epochs opened (0 unless speculation is on).
    pub epochs_opened: u64,
    /// Epochs that committed — the speculation paid off.
    pub epochs_committed: u64,
    /// Epochs that aborted — a late event violated the speculation.
    pub epochs_aborted: u64,
    /// Speculation-registry lock acquisitions (kept separate from
    /// `slow_path_locks`, whose identity is pinned to parking events).
    pub speculation_locks: u64,
    /// Never-sealed-session rescue passes the run needed (0 for any run
    /// whose speculation sessions all resolved on their own; see the
    /// module docs' end-of-run resolution section).
    pub rescue_passes: u64,
}

impl ParStats {
    /// Throughput in messages per wall-clock second.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.messages_delivered as f64 / secs
    }

    /// Load-balance summary: max worker events over mean worker events
    /// (1.0 = perfectly even).
    #[must_use]
    pub fn balance(&self) -> f64 {
        event_balance(&self.per_worker)
    }

    /// Total tasks obtained by stealing, across workers.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Total idle parks across workers (eventcount slow-path entries).
    #[must_use]
    pub fn total_parks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.parks).sum()
    }

    /// Total wakeups of parked peers this run's sends performed.
    #[must_use]
    pub fn total_wakeups(&self) -> u64 {
        self.per_worker.iter().map(|w| w.wakeups).sum()
    }

    /// Total mailbox tail-CAS retries across workers — the
    /// producer-contention signal of the lock-free mailboxes.
    #[must_use]
    pub fn total_push_retries(&self) -> u64 {
        self.per_worker.iter().map(|w| w.push_retries).sum()
    }

    /// Total speculation sessions entered (state snapshots taken).
    #[must_use]
    pub fn total_speculations(&self) -> u64 {
        self.per_worker.iter().map(|w| w.speculations).sum()
    }

    /// Total rollbacks (snapshot restores after an aborted epoch).
    #[must_use]
    pub fn total_rollbacks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.rollbacks).sum()
    }

    /// Total committed events replayed after rollbacks.
    #[must_use]
    pub fn total_replayed_events(&self) -> u64 {
        self.per_worker.iter().map(|w| w.replayed_events).sum()
    }

    /// Total speculative deliveries deferred to blocking.
    #[must_use]
    pub fn total_deferred_deliveries(&self) -> u64 {
        self.per_worker.iter().map(|w| w.deferred_deliveries).sum()
    }

    /// Publish this run's totals into a metrics registry under the `par.`
    /// prefix — the unified export path the scattered stats fields feed.
    pub fn export_metrics(&self, reg: &blazes_obs::Registry) {
        reg.counter("par.events").add(self.events_processed);
        reg.counter("par.deliveries").add(self.messages_delivered);
        reg.counter("par.duplicates").add(self.duplicates);
        reg.counter("par.retransmits").add(self.retransmits);
        reg.counter("par.steals").add(self.total_steals());
        reg.counter("par.parks").add(self.total_parks());
        reg.counter("par.wakeups").add(self.total_wakeups());
        reg.counter("par.push_retries")
            .add(self.total_push_retries());
        reg.counter("par.slow_path_locks").add(self.slow_path_locks);
        reg.counter("par.speculations")
            .add(self.total_speculations());
        reg.counter("par.rollbacks").add(self.total_rollbacks());
        reg.counter("par.replayed_events")
            .add(self.total_replayed_events());
        reg.counter("par.epochs.opened").add(self.epochs_opened);
        reg.counter("par.epochs.committed")
            .add(self.epochs_committed);
        reg.counter("par.epochs.aborted").add(self.epochs_aborted);
        reg.counter("par.rescue_passes").add(self.rescue_passes);
        reg.gauge("par.workers").set(self.workers as i64);
        reg.gauge("par.max_mailbox_depth")
            .set(self.max_mailbox_depth as i64);
    }
}

/// A runnable parallel execution.
pub struct ParExecutor {
    slots: Vec<Slot>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    workers: usize,
    tuning: ParTuning,
}

impl ParExecutor {
    /// Execute to quiescence and return run statistics.
    ///
    /// # Panics
    /// Re-raises the first panic of any component handler.
    #[must_use]
    pub fn run(self) -> ParStats {
        self.start().finish()
    }

    /// Spawn the workers and dispatch the builder's injections, returning
    /// a handle that accepts further external input while the run is
    /// live ([`RunningPar::inject`]). The handle holds a *source token*
    /// in the in-flight accounting: quiescence — and with it run
    /// completion — is unreachable until [`RunningPar::finish`] releases
    /// it, so a live handle can inject at any time without racing
    /// shutdown. This is the ingress the distributed backend feeds
    /// cross-process deliveries through.
    #[must_use]
    pub fn start(self) -> RunningPar {
        let started = Instant::now();
        let workers = self.workers;
        let mode = if self.tuning.stealing {
            SchedulerMode::WorkStealing
        } else {
            SchedulerMode::StaticShard
        };

        let locals: Vec<TaskQueue<usize>> = (0..workers).map(|_| TaskQueue::new_fifo()).collect();
        let stealers = locals.iter().map(TaskQueue::stealer).collect();

        let shared = Arc::new(Shared {
            slots: self.slots,
            mode,
            workers,
            batch_size: self.tuning.batch_size,
            capacity: self.tuning.channel_capacity,
            spill_threshold: self.tuning.spill_threshold.unwrap_or(usize::MAX),
            injector: Injector::new(),
            static_queues: (0..workers).map(|_| Injector::new()).collect(),
            stealers,
            counters: Counters {
                // One shard per worker plus one for the injecting
                // coordinator thread. The builder's injections are
                // pre-charged, plus one source token the RunningPar
                // handle holds until `finish` — which is also why an
                // empty injection list no longer needs a special case.
                in_flight: InFlight::new(workers + 1, self.injected.len() as i64 + 1),
                events: AtomicU64::new(0),
                deliveries: AtomicU64::new(0),
                duplicates: AtomicU64::new(0),
                retransmits: AtomicU64::new(0),
            },
            spec: self.tuning.speculation.then(SpecShared::new),
            deferred: AtomicI64::new(0),
            rescue: AtomicU8::new(0),
            rescue_passes: AtomicU64::new(0),
            virtual_ns: self.tuning.virtual_service_ns,
            done: AtomicBool::new(false),
            active: AtomicUsize::new(workers),
            idle: EventCount::new(),
        });

        let mut handles = Vec::with_capacity(workers);
        for (w, local) in locals.into_iter().enumerate() {
            let ctx = WorkerCtx {
                shared: Arc::clone(&shared),
                idx: w,
                local,
                local_len: 0,
                scratch: Vec::new(),
                drain_buf: Vec::new(),
                latency: None,
                ws: WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                },
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("blazes-par-{w}"))
                    .spawn(move || ctx.run())
                    .expect("spawn worker thread"),
            );
        }

        // Dispatch injections (workers are already listening). Pushing in
        // the sorted order preserves each instance's injection sequence.
        for (_, to, port, msg) in self.injected {
            let born = blazes_obs::start();
            blazes_obs::record(EventKind::Inject, to.0 as u64, 0);
            shared.external_push(
                to.0,
                MailItem::Deliver {
                    port,
                    msg,
                    epoch: 0,
                    born,
                },
            );
        }

        RunningPar {
            shared,
            handles,
            started,
        }
    }
}

/// A live parallel run: workers are executing, and the holder may still
/// feed external messages in. Dropping the handle without calling
/// [`RunningPar::finish`] leaks the source token and the worker threads —
/// always finish.
pub struct RunningPar {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<WorkerStats>>,
    started: Instant,
}

impl RunningPar {
    /// Deliver one external (committed) message to `port` of `to`,
    /// honoring backpressure. Callable from any thread; concurrent calls
    /// race only in arrival order, exactly like concurrent producers.
    pub fn inject(&self, to: InstanceId, port: PortId, msg: Message) {
        // Charge the coordinator's shard before the push becomes
        // visible — the same invariant every worker send upholds.
        self.shared
            .counters
            .in_flight
            .charge(self.shared.workers, 1);
        let born = blazes_obs::start();
        blazes_obs::record(EventKind::Inject, to.0 as u64, 0);
        self.shared.external_push(
            to.0,
            MailItem::Deliver {
                port: port.0,
                msg,
                epoch: 0,
                born,
            },
        );
    }

    /// Advisory quiescence probe: has every delivery — injected or
    /// internal — been fully processed, so that only this handle's source
    /// token (plus any speculation deferrals parked behind it, which only
    /// [`RunningPar::finish`]'s rescue ladder can resolve) remains in the
    /// in-flight accounting? A concurrent [`RunningPar::inject`] from
    /// another thread invalidates the answer the instant it is produced;
    /// the distributed backend re-validates through its probe round
    /// before acting on it.
    #[must_use]
    pub fn settled(&self) -> bool {
        let expected = if self.shared.spec.is_some() {
            self.shared.deferred.load(Ordering::SeqCst)
        } else {
            0
        };
        self.shared.counters.in_flight.settled_at(1 + expected)
    }

    /// Release the source token, wait for quiescence, and return the
    /// run's statistics.
    ///
    /// # Panics
    /// Re-raises the first panic of any component handler.
    #[must_use]
    pub fn finish(self) -> ParStats {
        let RunningPar {
            shared,
            handles,
            started,
        } = self;
        let workers = shared.workers;
        let mode = shared.mode;
        // Release the source token: the in-flight sum can now reach
        // zero, and a parked worker's next scan (bounded by
        // PARK_TIMEOUT) detects quiescence. Deliberately no notify here:
        // it would be an unaccounted slow-path lock in the parking
        // identity the lock-accounting tests pin.
        shared.counters.in_flight.settle(workers, 1);

        let mut per_worker = Vec::with_capacity(workers);
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(ws) => per_worker.push(ws),
                Err(payload) => {
                    // Keep the first worker's payload: later panics are
                    // usually cascades of the originating failure.
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        per_worker.sort_by_key(|w| w.worker);

        let shared = Arc::into_inner(shared).expect("workers joined, no other holders");
        let mut per_instance = Vec::with_capacity(shared.slots.len());
        let mut max_mailbox_depth = 0;
        let mut slow_path_locks = shared.idle.locks.into_inner();
        for slot in shared.slots {
            max_mailbox_depth = max_mailbox_depth.max(slot.mailbox.depth_max.into_inner());
            slow_path_locks += slot.mailbox.space.locks.into_inner();
            let cell = slot.cell.into_inner();
            per_instance.push(InstanceStats {
                name: cell.component.name().to_string(),
                processed: cell.processed,
                busy_until: 0,
            });
        }

        let rescue_passes = shared.rescue_passes.into_inner();
        let (epochs_opened, epochs_committed, epochs_aborted, speculation_locks) =
            shared.spec.map_or((0, 0, 0, 0), |s| {
                (
                    s.opened.into_inner(),
                    s.committed.into_inner(),
                    s.aborted.into_inner(),
                    s.locks.into_inner(),
                )
            });

        let stats = ParStats {
            events_processed: shared.counters.events.load(Ordering::SeqCst),
            messages_delivered: shared.counters.deliveries.load(Ordering::SeqCst),
            duplicates: shared.counters.duplicates.load(Ordering::SeqCst),
            retransmits: shared.counters.retransmits.load(Ordering::SeqCst),
            workers,
            mode,
            wall_time: started.elapsed(),
            per_instance,
            per_worker,
            max_mailbox_depth,
            slow_path_locks,
            epochs_opened,
            epochs_committed,
            epochs_aborted,
            speculation_locks,
            rescue_passes,
        };
        // One registry pass per run, and only when observability is on —
        // the disabled path never touches the registry mutex.
        if blazes_obs::enabled() {
            stats.export_metrics(blazes_obs::global().registry());
        }
        stats
    }
}

/// Sets the global done flag if the owning worker unwinds, so sibling
/// workers (and the joining coordinator) cannot deadlock on a dead peer.
struct PanicGuard {
    shared: Arc<Shared>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.finish();
        }
    }
}

/// What to do with one drained delivery under time-warp rules.
enum Admit {
    /// Process it now (committed, same-epoch speculation, or a freshly
    /// entered speculation session).
    Run,
    /// Park it until its epoch resolves.
    Defer,
    /// Its epoch aborted before it was processed: discard.
    Drop,
}

struct WorkerCtx {
    shared: Arc<Shared>,
    idx: usize,
    local: TaskQueue<usize>,
    /// Approximate local queue length (stealers may shrink it unseen;
    /// batch steals into the deque resync it in `find_task`).
    local_len: usize,
    /// Reusable staging buffer for one event's outbound sends, so they
    /// can be charged to the in-flight shard in one RMW before any
    /// becomes visible.
    scratch: Vec<(usize, MailItem)>,
    /// Reusable drain buffer: one activation's mailbox batch, so the
    /// queue's length counter settles once per batch.
    drain_buf: Vec<MailItem>,
    /// Cached handle to the global `latency.tuple_ns` histogram, resolved
    /// through the registry mutex at most once per worker — and only ever
    /// when a latency-stamped delivery reaches a sink, which requires
    /// tracing to have been enabled at injection time.
    latency: Option<Arc<Histogram>>,
    ws: WorkerStats,
}

impl WorkerCtx {
    fn run(mut self) -> WorkerStats {
        let guard = PanicGuard {
            shared: Arc::clone(&self.shared),
        };
        // One Arc clone for the whole worker lifetime; the hot path below
        // passes `&Shared` down instead of touching the refcount per call.
        let shared = Arc::clone(&self.shared);
        loop {
            if shared.done.load(Ordering::SeqCst) {
                break;
            }
            match self.find_task(&shared) {
                Some(inst) => self.run_instance(&shared, inst),
                None => {
                    if !self.idle_park(&shared) {
                        break;
                    }
                }
            }
        }
        drop(guard);
        self.ws
    }

    fn find_task(&mut self, shared: &Shared) -> Option<usize> {
        if let Some(inst) = self.local.pop() {
            self.local_len = self.local_len.saturating_sub(1);
            return Some(inst);
        }
        self.local_len = 0;
        match shared.mode {
            SchedulerMode::StaticShard => {
                match Self::steal_until_settled(|| {
                    shared.static_queues[self.idx].steal_batch_and_pop(&self.local)
                }) {
                    Some(inst) => {
                        // Batch steals moved extra tasks into the local
                        // deque; resync the length estimate.
                        self.local_len = self.local.len();
                        self.ws.injector_pops += 1;
                        Some(inst)
                    }
                    None => None,
                }
            }
            SchedulerMode::WorkStealing => {
                if let Some(inst) =
                    Self::steal_until_settled(|| shared.injector.steal_batch_and_pop(&self.local))
                {
                    self.local_len = self.local.len();
                    self.ws.injector_pops += 1;
                    blazes_obs::record(EventKind::InjectorPop, inst as u64, 0);
                    return Some(inst);
                }
                // Steal from siblings, starting just past ourselves so the
                // pressure spreads instead of converging on worker 0.
                for i in 1..shared.workers {
                    let victim = (self.idx + i) % shared.workers;
                    if let Some(inst) =
                        Self::steal_until_settled(|| shared.stealers[victim].steal())
                    {
                        self.ws.steals += 1;
                        blazes_obs::record(EventKind::Steal, victim as u64, inst as u64);
                        return Some(inst);
                    }
                }
                None
            }
        }
    }

    /// Retry a steal operation until it yields success or empty. `Retry`
    /// usually means a lost CAS race, but can also mean a peer is mid
    /// block-install in the injector — the spin hint keeps this loop from
    /// starving that peer of the CPU it needs to finish.
    fn steal_until_settled(mut op: impl FnMut() -> Steal<usize>) -> Option<usize> {
        loop {
            match op() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Drain up to `batch_size` messages from one instance in one batched
    /// queue operation, then release or reschedule it.
    fn run_instance(&mut self, shared: &Shared, inst: usize) {
        if shared.spec.is_some() {
            // Time-warp mode takes a separate activation path so the
            // speculation-free hot path below stays byte-for-byte what
            // the lock-accounting tests pin.
            self.run_instance_spec(shared, inst);
            return;
        }
        let slot = &shared.slots[inst];
        self.ws.activations += 1;
        let span = blazes_obs::start();
        // The scheduled flag makes us the exclusive owner of both the
        // mailbox's consumer side and the instance cell.
        slot.cell.claim();
        let cell = unsafe { &mut *slot.cell.cell.get() };
        let mut batch = std::mem::take(&mut self.drain_buf);
        batch.clear();
        let drained = slot.mailbox.queue.pop_batch(&mut batch, shared.batch_size);
        for item in batch.drain(..) {
            self.process(shared, inst, item, cell, 0);
        }
        self.drain_buf = batch;
        slot.cell.release();
        blazes_obs::span(span, EventKind::Activation, inst as u64, drained as u64);
        if drained > 0 {
            // Settle the whole batch against this worker's shard in one
            // RMW. Deferring decrements is safe (the sum only
            // over-approximates); quiescence is detected by the idle-scan
            // in `idle_park`.
            shared.counters.in_flight.settle(self.idx, drained as i64);
            // The drain freed mailbox space: wake senders parked on it
            // (no-op unless someone is registered waiting).
            slot.mailbox.notify_space();
        }

        // Release protocol: keep the scheduled flag while work remains;
        // otherwise clear it and re-check for the racing producer whose
        // flag CAS failed just before we cleared. `is_empty` is based on
        // the queue's never-under-reporting length counter, so a push
        // that is still mid-flight keeps the instance scheduled.
        if !slot.mailbox.is_empty() {
            self.enqueue_ready(shared, inst);
        } else {
            slot.mailbox.scheduled.store(false, Ordering::SeqCst);
            if !slot.mailbox.is_empty()
                && slot
                    .mailbox
                    .scheduled
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.enqueue_ready(shared, inst);
            }
        }
    }

    /// The time-warp activation path: resolve any finished epoch first
    /// (commit/rollback), retry deferred deliveries, then admit the
    /// drained batch item by item — run, defer, or drop each according to
    /// its epoch — and re-check both queues and the `spec_dirty` hint in
    /// the release protocol.
    fn run_instance_spec(&mut self, shared: &Shared, inst: usize) {
        let slot = &shared.slots[inst];
        self.ws.activations += 1;
        let span = blazes_obs::start();
        slot.cell.claim();
        let cell = unsafe { &mut *slot.cell.cell.get() };
        // Clear the wake hint before acting on it: a resolution landing
        // after this store re-sets it, and the release re-check below (or
        // the resolver's own scheduled-flag CAS) guarantees another
        // activation sees it.
        slot.mailbox.spec_dirty.store(false, Ordering::SeqCst);
        self.spec_maintain(shared, inst, cell);
        self.drain_deferred(shared, inst, cell);
        let mut batch = std::mem::take(&mut self.drain_buf);
        batch.clear();
        let drained = slot.mailbox.queue.pop_batch(&mut batch, shared.batch_size);
        for item in batch.drain(..) {
            self.admit(shared, inst, item, cell);
        }
        self.drain_buf = batch;
        // An epoch may have resolved while we held the flag (its resolver
        // could not reschedule us); act on it before releasing.
        self.spec_maintain(shared, inst, cell);
        self.drain_deferred(shared, inst, cell);
        slot.cell.release();
        blazes_obs::span(span, EventKind::Activation, inst as u64, drained as u64);
        if drained > 0 {
            shared.counters.in_flight.settle(self.idx, drained as i64);
            slot.mailbox.notify_space();
        }

        if !slot.mailbox.is_empty() {
            self.enqueue_ready(shared, inst);
        } else {
            slot.mailbox.scheduled.store(false, Ordering::SeqCst);
            if (!slot.mailbox.is_empty() || slot.mailbox.spec_dirty.load(Ordering::SeqCst))
                && slot
                    .mailbox
                    .scheduled
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.enqueue_ready(shared, inst);
            }
        }
    }

    /// Act on a resolved epoch this instance is tainted by: a commit
    /// simply drops the checkpoint (current state is the real state); an
    /// abort restores the checkpoint and deterministically replays the
    /// committed inputs absorbed while tainted.
    fn spec_maintain(&mut self, shared: &Shared, inst: usize, cell: &mut Cell) {
        let Some(spec) = &cell.spec else { return };
        match spec.status.load(Ordering::SeqCst) {
            EPOCH_COMMITTED => {
                cell.spec = None;
            }
            EPOCH_ABORTED => {
                let spec = cell.spec.take().expect("checked above");
                cell.component.restore(spec.snapshot);
                self.ws.rollbacks += 1;
                self.ws.replayed_events += spec.log.len() as u64;
                blazes_obs::record(EventKind::Rollback, spec.epoch, inst as u64);
                for item in spec.log {
                    // Untainted again: replay emissions go out committed
                    // (the originals carried the aborted epoch and were
                    // discarded downstream).
                    self.process(shared, inst, item, cell, 0);
                }
            }
            _ => {}
        }
    }

    /// A latency-stamped tuple reached a sink: record source-to-sink
    /// nanoseconds into the global histogram and the trace. Reached only
    /// when tracing was enabled at injection, so this is off the
    /// disabled-mode path entirely.
    fn note_sink_latency(&mut self, inst: usize, born: u64) {
        let obs = blazes_obs::global();
        let latency = obs.now_ns().saturating_sub(born);
        self.latency
            .get_or_insert_with(|| obs.registry().histogram("latency.tuple_ns"))
            .record(latency);
        obs.record(EventKind::SinkArrival, inst as u64, latency);
    }

    /// Retry deferred deliveries in arrival order, stopping at the first
    /// that still has to wait (FIFO must hold through deferral).
    fn drain_deferred(&mut self, shared: &Shared, inst: usize, cell: &mut Cell) {
        while let Some(item) = cell.deferred.pop_front() {
            match self.admit_decision(shared, inst, &item, cell) {
                Admit::Run => {
                    shared.counters.in_flight.settle(self.idx, 1);
                    shared.deferred.fetch_sub(1, Ordering::SeqCst);
                    self.process_admitted(shared, inst, item, cell);
                }
                Admit::Drop => {
                    shared.counters.in_flight.settle(self.idx, 1);
                    shared.deferred.fetch_sub(1, Ordering::SeqCst);
                    self.ws.discarded_deliveries += 1;
                }
                Admit::Defer => {
                    cell.deferred.push_front(item);
                    return;
                }
            }
        }
    }

    /// Admit one freshly drained item under time-warp rules.
    fn admit(&mut self, shared: &Shared, inst: usize, item: MailItem, cell: &mut Cell) {
        // Order preservation: once anything is deferred, everything
        // behind it defers too (a later committed item must not overtake
        // a deferred speculative one on the same wire).
        if !cell.deferred.is_empty() {
            self.defer(shared, cell, item);
            return;
        }
        match self.admit_decision(shared, inst, &item, cell) {
            Admit::Run => self.process_admitted(shared, inst, item, cell),
            Admit::Defer => self.defer(shared, cell, item),
            Admit::Drop => self.ws.discarded_deliveries += 1,
        }
    }

    /// Classify one delivery: run it now, park it until its epoch
    /// resolves, or drop it (epoch already aborted). Entering a
    /// speculation session (snapshot + taint) happens here, on the first
    /// open-epoch delivery to an untainted, checkpointable component.
    fn admit_decision(
        &mut self,
        shared: &Shared,
        inst: usize,
        item: &MailItem,
        cell: &mut Cell,
    ) -> Admit {
        let epoch = item.epoch();
        if epoch == 0 {
            return Admit::Run;
        }
        let status = self.epoch_status(shared, cell, epoch);
        match status.load(Ordering::SeqCst) {
            EPOCH_ABORTED => return Admit::Drop,
            EPOCH_COMMITTED => return Admit::Run,
            _ => {}
        }
        if let Some(spec) = &cell.spec {
            if spec.epoch == epoch {
                // Already speculating in this epoch: keep going.
                return Admit::Run;
            }
            // Tainted by a different epoch: wait (and register for the
            // other epoch's wake too, for prompt draining).
            self.spec_join(shared, inst, epoch);
            return Admit::Defer;
        }
        match cell.component.snapshot() {
            Some(snapshot) => {
                let status = self.spec_join(shared, inst, epoch);
                // The join is atomic with registration under the registry
                // lock; re-check in case the epoch resolved since the
                // cached load above.
                match status.load(Ordering::SeqCst) {
                    EPOCH_ABORTED => Admit::Drop,
                    EPOCH_COMMITTED => Admit::Run,
                    _ => {
                        cell.spec = Some(InstSpec {
                            epoch,
                            status,
                            snapshot,
                            log: Vec::new(),
                        });
                        self.ws.speculations += 1;
                        Admit::Run
                    }
                }
            }
            None => {
                // Not checkpointable: this consumer blocks on the seal
                // after all. Register so the resolution reschedules us.
                self.spec_join(shared, inst, epoch);
                Admit::Defer
            }
        }
    }

    /// Run an admitted item, logging it first if it is committed input
    /// absorbed under taint (those must be replayed after a rollback —
    /// same-epoch speculative input is *not* logged, because the gate
    /// re-emits its corrected equivalent after an abort).
    fn process_admitted(&mut self, shared: &Shared, inst: usize, item: MailItem, cell: &mut Cell) {
        if let Some(spec) = &mut cell.spec {
            if item.epoch() != spec.epoch {
                spec.log.push(item.clone());
            }
        }
        let taint = cell.spec.as_ref().map_or(0, |s| s.epoch);
        self.process(shared, inst, item, cell, taint);
    }

    /// Park a delivery until its epoch resolves. The batch settle counts
    /// it as consumed, so re-charge to keep the quiescence sum honest
    /// until it actually runs or is dropped.
    fn defer(&mut self, shared: &Shared, cell: &mut Cell, item: MailItem) {
        shared.counters.in_flight.charge(self.idx, 1);
        shared.deferred.fetch_add(1, Ordering::SeqCst);
        cell.deferred.push_back(item);
        self.ws.deferred_deliveries += 1;
    }

    /// Status handle for `epoch`, from the cell's cache or (once) the
    /// shared registry.
    fn epoch_status(&mut self, shared: &Shared, cell: &mut Cell, epoch: u64) -> Arc<AtomicU8> {
        if let Some(s) = cell.epoch_cache.get(&epoch) {
            return Arc::clone(s);
        }
        let spec = shared.spec.as_ref().expect("time-warp mode");
        spec.locks.fetch_add(1, Ordering::Relaxed);
        let mut table = spec
            .epochs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = table.entry(epoch).or_insert_with(|| {
            spec.opened.fetch_add(1, Ordering::Relaxed);
            blazes_obs::record(EventKind::EpochOpen, epoch, 0);
            EpochEntry::default()
        });
        let status = Arc::clone(&entry.status);
        drop(table);
        cell.epoch_cache.insert(epoch, Arc::clone(&status));
        status
    }

    /// Register `inst` as a participant of `epoch` and return the status
    /// handle — atomically under the registry lock, so a resolution
    /// concurrent with the join either sees the registration (and wakes
    /// us) or is visible in the returned status.
    fn spec_join(&mut self, shared: &Shared, inst: usize, epoch: u64) -> Arc<AtomicU8> {
        let spec = shared.spec.as_ref().expect("time-warp mode");
        spec.locks.fetch_add(1, Ordering::Relaxed);
        let mut table = spec
            .epochs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = table.entry(epoch).or_insert_with(|| {
            spec.opened.fetch_add(1, Ordering::Relaxed);
            blazes_obs::record(EventKind::EpochOpen, epoch, 0);
            EpochEntry::default()
        });
        if entry.status.load(Ordering::SeqCst) == EPOCH_OPEN && !entry.participants.contains(&inst)
        {
            entry.participants.push(inst);
        }
        Arc::clone(&entry.status)
    }

    /// Resolve `epoch`: publish the status and reschedule every
    /// registered participant so commits drain deferred mail and aborts
    /// roll back promptly. Participants are taken under the same lock
    /// the join registers under — no registration can fall between.
    fn resolve_epoch(&mut self, shared: &Shared, epoch: u64, commit: bool) {
        let spec = shared
            .spec
            .as_ref()
            .expect("resolve_speculation requires ParTuning::with_speculation");
        spec.locks.fetch_add(1, Ordering::Relaxed);
        let participants = {
            let mut table = spec
                .epochs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let entry = table.entry(epoch).or_insert_with(|| {
                spec.opened.fetch_add(1, Ordering::Relaxed);
                blazes_obs::record(EventKind::EpochOpen, epoch, 0);
                EpochEntry::default()
            });
            entry.status.store(
                if commit {
                    EPOCH_COMMITTED
                } else {
                    EPOCH_ABORTED
                },
                Ordering::SeqCst,
            );
            std::mem::take(&mut entry.participants)
        };
        if commit {
            spec.committed.fetch_add(1, Ordering::Relaxed);
            blazes_obs::record(EventKind::EpochCommit, epoch, 0);
        } else {
            spec.aborted.fetch_add(1, Ordering::Relaxed);
            blazes_obs::record(EventKind::EpochAbort, epoch, 0);
        }
        // Any resolution is progress: restart the never-sealed rescue
        // ladder, so a later wedge gets the gentle drain pass first.
        shared.rescue.store(0, Ordering::SeqCst);
        for inst in participants {
            let mb = &shared.slots[inst].mailbox;
            // Hint first, then try to schedule: mirrors the mailbox
            // release protocol, so the owner's post-release re-check
            // catches the case where our CAS loses to a running owner.
            mb.spec_dirty.store(true, Ordering::SeqCst);
            if mb
                .scheduled
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.enqueue_ready(shared, inst);
            }
        }
    }

    fn process(
        &mut self,
        shared: &Shared,
        inst: usize,
        item: MailItem,
        cell: &mut Cell,
        taint: u64,
    ) {
        shared.counters.events.fetch_add(1, Ordering::Relaxed);
        self.ws.events += 1;
        cell.now += 1;
        let mut ctx = Context::new(cell.now, InstanceId(inst));
        let mut born = 0;
        match item {
            MailItem::Deliver {
                port,
                msg,
                born: stamp,
                ..
            } => {
                shared.counters.deliveries.fetch_add(1, Ordering::Relaxed);
                born = stamp;
                if stamp != 0 {
                    // Tracing was on at injection: this delivery carries a
                    // latency stamp. At a sink (no outgoing wires) the
                    // tuple's journey ends — record source-to-sink latency.
                    if cell.wires.iter().all(Vec::is_empty) {
                        self.note_sink_latency(inst, stamp);
                    }
                }
                cell.component.on_message(port, msg, &mut ctx);
                cell.processed += 1;
            }
            MailItem::Tick { .. } => cell.component.on_tick(&mut ctx),
            MailItem::Drain => cell.component.on_drain(&mut ctx),
        }
        shared.burn_service(cell.service);

        let Context {
            emitted,
            epochs,
            resolves,
            ticks,
            ..
        } = ctx;
        assert!(
            shared.spec.is_some() || (resolves.is_empty() && epochs.iter().all(|&e| e == 0)),
            "{} used speculative emissions without ParTuning::with_speculation",
            cell.component.name()
        );
        let mut staged = std::mem::take(&mut self.scratch);
        // Resolutions interleave with emissions at their recorded
        // positions: applying them during staging (before any send is
        // visible) keeps "abort, then re-emit corrected" well-ordered —
        // a pre-abort tagged send that later reaches a consumer is
        // simply dropped as aborted.
        let mut next_resolve = 0usize;
        for (i, (out_port, msg)) in emitted.into_iter().enumerate() {
            while next_resolve < resolves.len() && resolves[next_resolve].2 <= i {
                let (epoch, commit, _) = resolves[next_resolve];
                self.resolve_epoch(shared, epoch, commit);
                next_resolve += 1;
            }
            // A tainted instance's every emission carries the taint, even
            // replies to committed input — the cascade that makes abort
            // reach everything downstream of speculative state.
            let epoch = if taint != 0 {
                taint
            } else {
                epochs.get(i).copied().unwrap_or(0)
            };
            Self::stage(
                shared,
                out_port,
                msg,
                epoch,
                born,
                &mut cell.wires,
                &mut staged,
            );
        }
        while next_resolve < resolves.len() {
            let (epoch, commit, _) = resolves[next_resolve];
            self.resolve_epoch(shared, epoch, commit);
            next_resolve += 1;
        }
        for _delay in ticks {
            // No virtual clock: a tick fires as the instance's next
            // self-event, preserving order relative to its own emissions.
            staged.push((inst, MailItem::Tick { epoch: taint }));
        }
        if !staged.is_empty() {
            // Charge every outbound message to this worker's shard BEFORE
            // any of them becomes visible — the invariant that keeps the
            // sharded quiescence scan from under-counting.
            shared
                .counters
                .in_flight
                .charge(self.idx, staged.len() as i64);
            for (dst, item) in staged.drain(..) {
                self.send(shared, inst, dst, item);
            }
        }
        self.scratch = staged;
    }

    /// Resolve one emission along every wire of `(instance, out_port)`
    /// into staged mail items, drawing faults from each wire's private
    /// RNG stream.
    fn stage(
        shared: &Shared,
        out_port: usize,
        msg: Message,
        epoch: u64,
        born: u64,
        wires: &mut [Vec<WireRt>],
        staged: &mut Vec<(usize, MailItem)>,
    ) {
        let Some(port_wires) = wires.get_mut(out_port) else {
            return;
        };
        for wire in port_wires {
            let mut duplicate = false;
            if let Some(rng) = wire.rng.as_mut() {
                if wire.loss_prob > 0.0 && rng.random::<f64>() < wire.loss_prob {
                    // The first transmission is lost and retried; delivery
                    // still happens (at-least-once), just counted.
                    shared.counters.retransmits.fetch_add(1, Ordering::Relaxed);
                }
                duplicate = wire.duplicate_prob > 0.0 && rng.random::<f64>() < wire.duplicate_prob;
            }
            let dst = wire.dst;
            let dst_port = wire.dst_port;
            staged.push((
                dst,
                MailItem::Deliver {
                    port: dst_port,
                    msg: msg.clone(),
                    epoch,
                    born,
                },
            ));
            if duplicate {
                shared.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                staged.push((
                    dst,
                    MailItem::Deliver {
                        port: dst_port,
                        msg: msg.clone(),
                        epoch,
                        born,
                    },
                ));
            }
        }
    }

    /// Push one (already charged) item into the destination mailbox
    /// (parking on a bounded full mailbox when it is safe to do so), and
    /// make the destination runnable. Steady state is lock-free: the
    /// capacity check reads the queue's atomic length, the push is one
    /// tail CAS, and the scheduled handoff is one more CAS — the Condvar
    /// below is reachable only when the mailbox is actually full.
    fn send(&mut self, shared: &Shared, src: usize, dst: usize, item: MailItem) {
        let mb = &shared.slots[dst].mailbox;
        if let Some(cap) = shared.capacity {
            // Never park on a mailbox only this worker can drain: the
            // current instance's own (self-loop), or — under static
            // sharding — any instance of this worker's shard.
            let self_drained = dst == src
                || (shared.mode == SchedulerMode::StaticShard && shared.owner_of(dst) == self.idx);
            if !self_drained {
                while mb.queue.len() >= cap && !shared.done.load(Ordering::SeqCst) {
                    // Refuse to be the last runnable worker (the
                    // no-deadlock escape): overshoot instead.
                    let prev = shared.active.fetch_sub(1, Ordering::SeqCst);
                    if prev <= 1 {
                        shared.active.fetch_add(1, Ordering::SeqCst);
                        self.ws.overflow_sends += 1;
                        break;
                    }
                    self.ws.backpressure_parks += 1;
                    let parked = Instant::now();
                    mb.park_for_space(cap, PARK_TIMEOUT);
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    self.ws.backpressure_park_time += parked.elapsed();
                }
            }
        }
        self.ws.push_retries += mb.push(item);
        if mb
            .scheduled
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.enqueue_ready(shared, dst);
        }
    }

    /// Put a runnable instance where a worker will find it.
    fn enqueue_ready(&mut self, shared: &Shared, inst: usize) {
        match shared.mode {
            SchedulerMode::StaticShard => {
                shared.static_queues[shared.owner_of(inst)].push(inst);
            }
            SchedulerMode::WorkStealing => {
                self.local.push(inst);
                self.local_len += 1;
                if self.local_len > self.ws.max_local_queue {
                    self.ws.max_local_queue = self.local_len;
                }
                if self.local_len > shared.spill_threshold {
                    // Shed half the local queue to the injector so idle
                    // workers can pick it up without stealing.
                    let target = shared.spill_threshold / 2;
                    while self.local_len > target {
                        match self.local.pop() {
                            Some(t) => {
                                shared.injector.push(t);
                                self.local_len -= 1;
                                self.ws.spills += 1;
                            }
                            None => {
                                self.local_len = 0;
                                break;
                            }
                        }
                    }
                }
            }
        }
        if shared.wake() {
            self.ws.wakeups += 1;
            blazes_obs::record(EventKind::Wakeup, self.idx as u64, inst as u64);
        }
    }

    /// The never-sealed-session rescue. Called only behind a validated
    /// settled scan: every remaining in-flight charge is a parked
    /// deferral, so an OPEN speculation epoch at this point can never
    /// resolve on its own — no message exists that could still reach its
    /// gate. Escalate in two stages: first a *drain pass* delivering
    /// [`MailItem::Drain`] to every instance, giving gates the chance to
    /// resolve their open sessions themselves ([`Component::on_drain`] —
    /// the speculative seal gate aborts, re-emits its voted partitions
    /// committed, and holds the unsealed ones back, i.e. blocking
    /// semantics); then, if the run wedges again without any resolution,
    /// a *hard abort* of every epoch still open. Returns `true` when a
    /// pass was initiated or is in flight — there is (or will be) new
    /// work, so the caller must not finish the run.
    fn try_rescue(&mut self, shared: &Shared) -> bool {
        let Some(spec) = shared.spec.as_ref() else {
            return false;
        };
        let open: Vec<u64> = {
            spec.locks.fetch_add(1, Ordering::Relaxed);
            let table = spec
                .epochs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            table
                .iter()
                .filter(|(_, e)| e.status.load(Ordering::SeqCst) == EPOCH_OPEN)
                .map(|(&epoch, _)| epoch)
                .collect()
        };
        if open.is_empty() {
            return false;
        }
        let stage = shared.rescue.load(Ordering::SeqCst);
        if stage >= 2 {
            // Ladder exhausted without a resolution: a component keeps an
            // epoch open through both passes. Give up rather than spin.
            return false;
        }
        if shared
            .rescue
            .compare_exchange(stage, stage + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // A sibling won the race; its pass is the progress we need.
            return true;
        }
        shared.rescue_passes.fetch_add(1, Ordering::Relaxed);
        blazes_obs::record(EventKind::Rescue, u64::from(stage), open.len() as u64);
        if stage == 0 {
            // Drain pass. The sends are charged like any other emission
            // so the settled scan stays honest while the pass is in
            // flight; src = dst skips the backpressure park (every
            // mailbox is empty — the scan just proved it).
            let n = shared.slots.len();
            shared.counters.in_flight.charge(self.idx, n as i64);
            for inst in 0..n {
                self.send(shared, inst, inst, MailItem::Drain);
            }
        } else {
            for epoch in open {
                self.resolve_epoch(shared, epoch, false);
            }
        }
        true
    }

    /// Park until new work may exist, using the eventcount's two-phase
    /// protocol: announce intent (so concurrent producers see us), then
    /// re-check every wake condition, and only park if all still hold.
    /// Returns `false` when the run is done.
    fn idle_park(&mut self, shared: &Shared) -> bool {
        // Phase one: announce. From here on, any producer's notify either
        // sees our waiter registration (and signals the Condvar) or
        // happens before our re-checks below (and we see its work) — the
        // SeqCst crossover that replaces holding a lock around the check.
        let ticket = shared.idle.prepare();
        if shared.done.load(Ordering::SeqCst) {
            shared.idle.cancel();
            return false;
        }
        // Phase two: re-check the run queues. The no-stranded-work
        // argument only needs the queues whose work nobody else will
        // drain: the injector and the static queues, both checked through
        // `SeqCst` loads that pair with the `SeqCst` announce above. A
        // sibling's local deque is different — its owner pops it before
        // ever idling, so work parked past here is at worst *processed by
        // the owner* instead of stolen, a bounded parallelism loss, never
        // a liveness one (the stealer re-checks are `SeqCst` too, making
        // even that window as small as the hardware allows).
        let maybe_work = match shared.mode {
            SchedulerMode::StaticShard => !shared.static_queues[self.idx].is_empty(),
            SchedulerMode::WorkStealing => {
                !shared.injector.is_empty() || shared.stealers.iter().any(|s| !s.is_empty())
            }
        };
        if maybe_work {
            shared.idle.cancel();
            return true;
        }
        // No runnable work anywhere in sight: fold the per-worker
        // in-flight cells. With `expected` = the parked-deferral count, a
        // validated match means nothing is in any mailbox or mid-batch:
        // the run is either over or wedged on speculation that no message
        // in flight can resolve.
        let expected = if shared.spec.is_some() {
            shared.deferred.load(Ordering::SeqCst)
        } else {
            0
        };
        if shared.counters.in_flight.settled_at(expected) {
            if self.try_rescue(shared) {
                shared.idle.cancel();
                return true;
            }
            if expected == 0 {
                shared.idle.cancel();
                shared.finish();
                return false;
            }
            // expected > 0 with no open epoch: the deferrals' epochs just
            // resolved and their instances are rescheduled — park, retry.
        }
        // Phase three: park (the ticket catches a notify that raced in
        // after the re-checks).
        shared.active.fetch_sub(1, Ordering::SeqCst);
        self.ws.parks += 1;
        let span = blazes_obs::start();
        let parked = Instant::now();
        shared.idle.wait(ticket, PARK_TIMEOUT);
        shared.active.fetch_add(1, Ordering::SeqCst);
        self.ws.idle_park_time += parked.elapsed();
        blazes_obs::span(span, EventKind::Park, self.idx as u64, 0);
        !shared.done.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::sinks::CollectorSink;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg)
        }))
    }

    /// Run the same assembly under every scheduler variant worth covering.
    fn variants() -> Vec<(&'static str, ParTuning)> {
        vec![
            ("stealing", ParTuning::default()),
            (
                "static",
                ParTuning {
                    stealing: false,
                    ..ParTuning::default()
                },
            ),
            (
                "stealing-bounded",
                ParTuning {
                    channel_capacity: Some(4),
                    batch_size: 3,
                    ..ParTuning::default()
                },
            ),
            (
                "static-bounded",
                ParTuning {
                    stealing: false,
                    channel_capacity: Some(4),
                    batch_size: 3,
                    ..ParTuning::default()
                },
            ),
            (
                "stealing-spill",
                ParTuning {
                    spill_threshold: Some(2),
                    batch_size: 1,
                    ..ParTuning::default()
                },
            ),
        ]
    }

    #[test]
    fn delivers_every_message_exactly_once() {
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(1)
                .with_workers(4)
                .with_tuning(tuning)
                .unwrap();
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
            for i in 0..500i64 {
                b.inject(0, e, PortId(0), Message::data([i]));
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 500, "{name}");
            assert_eq!(stats.messages_delivered, 1_000, "{name}"); // 500 at echo + 500 at sink
            let expected: std::collections::BTreeSet<Message> =
                (0..500i64).map(|i| Message::data([i])).collect();
            assert_eq!(sink.message_set(), expected, "{name}");
        }
    }

    #[test]
    fn single_wire_preserves_send_order() {
        // One producer, one sink, activations migrating between workers:
        // per-wire FIFO must hold whatever the thread interleaving — also
        // under bounded channels, where senders park mid-stream.
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(3)
                .with_workers(2)
                .with_tuning(tuning)
                .unwrap()
                .with_batch_size(7)
                .unwrap();
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
            for i in 0..200i64 {
                b.inject(0, e, PortId(0), Message::data([i]));
            }
            let _ = b.build().run();
            let expected: Vec<Message> = (0..200i64).map(|i| Message::data([i])).collect();
            assert_eq!(sink.messages(), expected, "{name}");
        }
    }

    #[test]
    fn fan_out_reaches_every_wire() {
        let mut b = ParBuilder::new(0).with_workers(3);
        let e = b.add_instance(echo());
        let s1 = CollectorSink::new();
        let s2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(s1.clone()));
        let i2 = b.add_instance(Box::new(s2.clone()));
        let ch = b.add_channel(ChannelConfig::instant());
        b.connect(e, PortId(0), i1, PortId(0), ch);
        b.connect(e, PortId(0), i2, PortId(0), ch);
        b.inject(0, e, PortId(0), Message::data([9i64]));
        let _ = b.build().run();
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn multi_hop_pipeline_terminates() {
        // A chain long enough to bounce between workers repeatedly.
        for (name, tuning) in variants() {
            let mut b = ParBuilder::new(5)
                .with_workers(4)
                .with_tuning(tuning)
                .unwrap()
                .with_batch_size(3)
                .unwrap();
            let sink = CollectorSink::new();
            let mut prev = b.add_instance(echo());
            let first = prev;
            for _ in 0..10 {
                let next = b.add_instance(echo());
                b.connect_with(prev, PortId(0), next, PortId(0), ChannelConfig::lan());
                prev = next;
            }
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(prev, PortId(0), s, PortId(0), ChannelConfig::lan());
            for i in 0..50i64 {
                b.inject(0, first, PortId(0), Message::data([i]));
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 50, "{name}");
            assert_eq!(stats.messages_delivered, 50 * 12, "{name}");
        }
    }

    #[test]
    fn duplicates_are_injected_and_counted() {
        let mut b = ParBuilder::new(11).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::instant().with_duplicates(1.0),
        );
        for i in 0..10i64 {
            b.inject(0, e, PortId(0), Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.duplicates, 10);
        assert_eq!(sink.len(), 20);
    }

    #[test]
    fn lossy_channels_still_deliver() {
        let mut b = ParBuilder::new(13).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_loss(1.0),
        );
        for i in 0..25i64 {
            b.inject(0, e, PortId(0), Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.retransmits, 25);
        assert_eq!(sink.len(), 25, "losses are retransmitted, never dropped");
    }

    #[test]
    fn fault_schedule_is_identical_across_worker_counts() {
        // Per-wire RNG streams: the k-th message on a wire sees the same
        // fault draws whatever the worker count, so aggregate fault counts
        // (and per-wire schedules) reproduce exactly.
        let run = |workers: usize, stealing: bool| {
            let mut b = ParBuilder::new(99)
                .with_workers(workers)
                .with_stealing(stealing);
            let e = b.add_instance(echo());
            let mid = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(
                e,
                PortId(0),
                mid,
                PortId(0),
                ChannelConfig::lan().with_loss(0.3).with_duplicates(0.2),
            );
            b.connect_with(
                mid,
                PortId(0),
                s,
                PortId(0),
                ChannelConfig::lan().with_duplicates(0.4),
            );
            for i in 0..300i64 {
                b.inject(0, e, PortId(0), Message::data([i]));
            }
            let stats = b.build().run();
            (stats.duplicates, stats.retransmits, sink.messages())
        };
        let baseline = run(1, true);
        assert!(baseline.0 > 0 && baseline.1 > 0, "faults must fire");
        for workers in [2usize, 4] {
            for stealing in [true, false] {
                assert_eq!(
                    run(workers, stealing),
                    baseline,
                    "fault schedule diverged at {workers} workers (stealing={stealing})"
                );
            }
        }
    }

    #[test]
    fn ticks_fire_and_terminate() {
        struct Ticker {
            fired: Arc<AtomicU64>,
        }
        impl Component for Ticker {
            fn on_message(&mut self, _: usize, _: Message, ctx: &mut Context) {
                ctx.schedule_tick(5_000);
            }
            fn on_tick(&mut self, _ctx: &mut Context) {
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "ticker"
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut b = ParBuilder::new(0).with_workers(2);
        let t = b.add_instance(Box::new(Ticker {
            fired: fired.clone(),
        }));
        b.inject(0, t, PortId(0), Message::Eos);
        let stats = b.build().run();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(stats.events_processed, 2); // delivery + tick
    }

    #[test]
    fn empty_run_terminates() {
        let mut b = ParBuilder::new(0).with_workers(2);
        let _ = b.add_instance(echo());
        let stats = b.build().run();
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn per_instance_stats_cover_all_instances() {
        let mut b = ParBuilder::new(2).with_workers(3);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
        for i in 0..7i64 {
            b.inject(0, e, PortId(0), Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.per_instance.len(), 2);
        assert_eq!(stats.per_instance[0].name, "echo");
        assert_eq!(stats.per_instance[0].processed, 7);
        assert_eq!(stats.per_instance[1].processed, 7);
        assert_eq!(stats.per_worker.len(), 3);
        let worker_events: u64 = stats.per_worker.iter().map(|w| w.events).sum();
        assert_eq!(worker_events, stats.events_processed);
    }

    #[test]
    fn builder_validation_returns_typed_errors() {
        assert_eq!(
            ParBuilder::new(0).with_batch_size(0).err(),
            Some(ParConfigError::ZeroBatchSize)
        );
        assert_eq!(
            ParBuilder::new(0).with_channel_capacity(0).err(),
            Some(ParConfigError::ZeroChannelCapacity)
        );
        assert_eq!(
            ParBuilder::new(0).with_spill_threshold(0).err(),
            Some(ParConfigError::ZeroSpillThreshold)
        );
        assert_eq!(
            ParBuilder::new(0)
                .with_tuning(ParTuning {
                    batch_size: 0,
                    ..ParTuning::default()
                })
                .err(),
            Some(ParConfigError::ZeroBatchSize)
        );
        assert!(ParBuilder::new(0).with_batch_size(1).is_ok());
        assert_eq!(
            ParConfigError::ZeroBatchSize.to_string(),
            "batch size must be at least 1"
        );
    }

    #[test]
    fn bounded_channels_backpressure_without_deadlock() {
        // A fast fan-in into one slow-ish consumer with a tiny capacity:
        // the bound must hold (up to the documented escape) and the run
        // must still quiesce with nothing lost.
        let mut b = ParBuilder::new(8)
            .with_workers(4)
            .with_channel_capacity(2)
            .unwrap()
            .with_batch_size(1)
            .unwrap();
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        for p in 0..3 {
            let e = b.add_instance(echo());
            b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
            for i in 0..100i64 {
                b.inject(0, e, PortId(0), Message::data([p * 1_000 + i]));
            }
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 300);
        // The lock-free capacity check and push are separate atomics, so
        // every concurrent sender (4 workers + the injecting coordinator)
        // can overshoot by one in a photo-finish race — plus the
        // documented last-runnable-worker escapes. It must stay far below
        // the unbounded case (300).
        assert!(
            stats.max_mailbox_depth
                <= 2 + 5
                    + stats
                        .per_worker
                        .iter()
                        .map(|w| w.overflow_sends)
                        .sum::<u64>() as usize,
            "mailbox depth {} exceeds the bound plus the accounted escapes",
            stats.max_mailbox_depth
        );
    }

    #[test]
    fn steady_state_hot_path_acquires_no_locks() {
        // A long single-worker pipeline run: with one worker there is
        // always local work, so the worker never idle-parks mid-run and
        // no mailbox is ever full (unbounded). Every message therefore
        // crosses the send/receive path without any slow-path event — and
        // the run's own lock counter (per-run state, immune to whatever
        // concurrent tests do) must not scale with the 40k messages: a
        // reintroduced hot-path lock would show up as 2+ acquisitions
        // per message.
        let mut b = ParBuilder::new(77).with_workers(1);
        let sink = CollectorSink::new();
        let mut prev = b.add_instance(echo());
        let first = prev;
        for _ in 0..3 {
            let next = b.add_instance(echo());
            b.connect_with(prev, PortId(0), next, PortId(0), ChannelConfig::lan());
            prev = next;
        }
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(prev, PortId(0), s, PortId(0), ChannelConfig::lan());
        for i in 0..8_000i64 {
            b.inject(0, first, PortId(0), Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 8_000);
        assert_eq!(stats.messages_delivered, 8_000 * 5);
        let locks = stats.slow_path_locks;
        let messages = stats.messages_delivered;
        assert!(
            locks < messages / 50,
            "slow-path locks ({locks}) must not scale with messages ({messages}): \
             the hot path reintroduced a lock"
        );
    }

    #[test]
    fn starved_workers_park_and_the_counters_say_so() {
        // One slow consumer instance, several fast producers, four
        // workers: the producers drain quickly, after which at most one
        // worker can run the consumer — the others starve and must go
        // through the eventcount (parks > 0). The consumer burns enough
        // CPU per message that the starvation phase dominates the run.
        let mut b = ParBuilder::new(5).with_workers(4);
        let sink = CollectorSink::new();
        let slow = b.add_instance(heavy_echo());
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(slow, PortId(0), s, PortId(0), ChannelConfig::lan());
        for p in 0..4 {
            let e = b.add_instance(echo());
            b.connect_with(e, PortId(0), slow, PortId(0), ChannelConfig::lan());
            for i in 0..150i64 {
                b.inject(0, e, PortId(0), Message::data([p * 1_000 + i]));
            }
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 600);
        assert!(
            stats.total_parks() > 0,
            "starved workers must park: {:?}",
            stats.per_worker
        );
        // The parking layer is the only lock user, so the run's lock
        // count is exactly accounted for by parking events: one per
        // worker park (eventcount wait), one per worker wakeup (notify
        // slow path), at most one per coordinator injection (its wake
        // can also take the notify slow path — not counted in any
        // worker's stats), plus one for the final `finish` broadcast.
        // A hot-path lock would break this identity immediately (40k+
        // uncounted acquisitions).
        assert!(
            stats.slow_path_locks > 0,
            "parks imply slow-path lock acquisitions"
        );
        let injections = 600u64;
        let accounted = stats.total_parks() + stats.total_wakeups() + injections + 1;
        assert!(
            stats.slow_path_locks <= accounted,
            "locks ({}) must be accounted for by parking events (<= {accounted})",
            stats.slow_path_locks,
        );
        // push_retries is surfaced but can legitimately be 0 on a 1-core
        // box (producers never physically overlap on the tail CAS).
        let _ = stats.total_push_retries();
    }

    #[test]
    fn self_loop_with_bounded_capacity_terminates() {
        // An instance that forwards to itself can never park on its own
        // mailbox (only it can drain it): the escape must kick in.
        let mut b = ParBuilder::new(4)
            .with_workers(1)
            .with_channel_capacity(1)
            .unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let looper = b.add_instance(Box::new(FnComponent::new(
            "looper",
            move |_, msg: Message, ctx: &mut Context| {
                if let Some(t) = msg.as_data() {
                    let v = t.get(0).and_then(crate::value::Value::as_int).unwrap();
                    c2.fetch_add(1, Ordering::SeqCst);
                    if v > 0 {
                        ctx.emit(0, Message::data([v - 1]));
                    }
                }
            },
        )));
        b.connect_with(
            looper,
            PortId(0),
            looper,
            PortId(0),
            ChannelConfig::instant(),
        );
        b.inject(0, looper, PortId(0), Message::data([50i64]));
        let _ = b.build().run();
        assert_eq!(counter.load(Ordering::SeqCst), 51);
    }

    /// A deliberately CPU-expensive echo, so runs last long enough for
    /// idle workers to wake up and participate even on one core.
    fn heavy_echo() -> Box<dyn Component> {
        Box::new(FnComponent::new(
            "heavy-echo",
            |_, msg, ctx: &mut Context| {
                let mut x = 0x9e37_79b9_7f4a_7c15u64;
                for i in 0..20_000u64 {
                    x = std::hint::black_box(x ^ i).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    x ^= x >> 31;
                }
                std::hint::black_box(x);
                ctx.emit(0, msg);
            },
        ))
    }

    #[test]
    fn stealing_balances_a_skewed_workload() {
        // 8 instances with wildly uneven message counts on 4 workers:
        // static sharding leaves whole shards idle while the hot shard
        // grinds; stealing spreads activations across workers.
        let run = |stealing: bool| {
            let mut b = ParBuilder::new(17)
                .with_workers(4)
                .with_stealing(stealing)
                .with_batch_size(4)
                .unwrap();
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            for m in 0..8usize {
                let e = b.add_instance(heavy_echo());
                b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
                // Instance 0 gets the lion's share.
                let n = if m == 0 { 600 } else { 25 };
                for i in 0..n {
                    b.inject(0, e, PortId(0), Message::data([i as i64]));
                }
            }
            let stats = b.build().run();
            assert_eq!(sink.len(), 600 + 7 * 25);
            stats
        };
        let stealing = run(true);
        let static_ = run(false);
        assert!(
            stealing.total_steals() > 0,
            "skew must trigger steals: {:?}",
            stealing.per_worker
        );
        assert!(
            stealing.balance() < static_.balance(),
            "stealing balance {:.2} must beat static {:.2}",
            stealing.balance(),
            static_.balance()
        );
    }
}
