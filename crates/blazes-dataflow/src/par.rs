//! The multi-worker parallel executor.
//!
//! Where [`crate::sim`] *models* concurrency in virtual time, this backend
//! *runs* it: component instances are sharded across OS worker threads,
//! messages travel in batches over MPMC channels, and delivery order across
//! producers is whatever the scheduler produces. This is exactly the
//! execution regime the Blazes analysis reasons about — confluent
//! (order-insensitive) topologies reach the same final state as any
//! sequential interleaving, which the differential tests assert against the
//! seeded simulator.
//!
//! Guarantees:
//!
//! * **Per-wire FIFO — always.** A wire's messages are processed in send
//!   order: a wire's source instance lives on one worker, emissions are
//!   enqueued in emission order, and the channels are FIFO. Seal and EOS
//!   punctuations therefore never overtake the records they cover — the
//!   invariant the sealing protocol needs (paper Section V-B1). Note this
//!   is *stronger* than the simulator for channels configured with
//!   [`ChannelConfig::with_fifo`]`(false)`: the datagram-like single-wire
//!   reordering the simulator models is not reproduced here (cross-wire
//!   interleaving remains nondeterministic), so ordering anomalies that
//!   only arise from non-FIFO wires will not surface on this backend.
//! * **At-least-once faults.** Channel `duplicate_prob` injects duplicate
//!   deliveries and `loss_prob` counts a retransmission (the message is
//!   still delivered — losses are retried, as in the simulator). Fault
//!   draws come from per-worker seeded RNGs; unlike the simulator they are
//!   *not* reproducible across runs, because draw order depends on thread
//!   scheduling.
//! * **Quiescence.** `run` returns once every injected and derived message
//!   has been processed, detected by a global in-flight counter.
//!
//! `Context::now` under this backend is a worker-local event ordinal, not
//! virtual microseconds: it orders the events one instance observed but is
//! not comparable across workers.

use crate::backend::ExecutorBuilder;
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::metrics::InstanceStats;
use crate::sim::{InstanceId, Time};
use crossbeam_channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default cap on worker threads when the builder does not pin a count.
const DEFAULT_MAX_WORKERS: usize = 8;

/// Default number of envelopes per cross-worker batch.
const DEFAULT_BATCH_SIZE: usize = 64;

#[derive(Debug)]
enum Work {
    Deliver {
        dst: InstanceId,
        port: usize,
        msg: Message,
    },
    Tick {
        dst: InstanceId,
    },
}

enum WorkerMsg {
    Batch(Vec<Work>),
    Shutdown,
}

#[derive(Debug, Clone, Copy)]
struct Wire {
    dst: InstanceId,
    dst_port: usize,
    channel: usize,
}

struct ParInstance {
    component: Box<dyn Component>,
    wires: Vec<Vec<Wire>>,
}

/// Builder for a parallel run: add instances, wire ports, inject inputs —
/// the same assembly surface as [`crate::sim::SimBuilder`].
pub struct ParBuilder {
    instances: Vec<ParInstance>,
    channels: Vec<ChannelConfig>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    seed: u64,
    workers: Option<usize>,
    batch_size: usize,
}

impl ParBuilder {
    /// Start a new parallel run description. `seed` drives the per-worker
    /// fault-injection RNGs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ParBuilder {
            instances: Vec::new(),
            channels: Vec::new(),
            injected: Vec::new(),
            seed,
            workers: None,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Pin the worker-thread count (default: available parallelism, capped
    /// at 8, never more than the instance count).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Set the cross-worker delivery batch size (default 64). Larger
    /// batches amortize channel synchronization; smaller ones reduce
    /// latency skew between workers.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Add a component instance.
    pub fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let id = InstanceId(self.instances.len());
        self.instances.push(ParInstance {
            component,
            wires: Vec::new(),
        });
        id
    }

    /// Register a channel configuration and return its handle for reuse.
    pub fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        self.channels.push(cfg);
        self.channels.len() - 1
    }

    /// Wire output `out_port` of `from` to input `in_port` of `to` over the
    /// channel registered as `channel`.
    pub fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        assert!(channel < self.channels.len(), "unknown channel handle");
        assert!(to.0 < self.instances.len(), "unknown destination instance");
        let wires = &mut self.instances[from.0].wires;
        if wires.len() <= out_port {
            wires.resize_with(out_port + 1, Vec::new);
        }
        wires[out_port].push(Wire {
            dst: to,
            dst_port: in_port,
            channel,
        });
    }

    /// Convenience: wire with a fresh channel config.
    pub fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }

    /// Inject an external message. `at` is an ordering key only (the
    /// parallel backend has no virtual clock): injections are dispatched
    /// in ascending `at`, ties in insertion order — the same order the
    /// simulator's event queue would open with.
    pub fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        self.injected.push((at, to, port, msg));
    }

    /// Finalize into a runnable [`ParExecutor`].
    #[must_use]
    pub fn build(mut self) -> ParExecutor {
        // An explicitly pinned count is honored as-is; only the derived
        // default is capped and clamped to the instance count.
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(DEFAULT_MAX_WORKERS)
                .min(self.instances.len().max(1))
        });
        // Dispatch order: ascending injection time, insertion order on ties
        // (stable sort), mirroring the simulator's opening event order.
        self.injected.sort_by_key(|&(at, _, _, _)| at);
        ParExecutor {
            instances: self.instances,
            channels: Arc::from(self.channels),
            injected: self.injected,
            seed: self.seed,
            workers,
            batch_size: self.batch_size,
        }
    }
}

impl ExecutorBuilder for ParBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        ParBuilder::add_instance(self, component)
    }

    fn set_service_time(&mut self, _id: InstanceId, _service: Time) {
        // Wall-clock backend: processing costs are whatever the component
        // actually costs; modeled service times do not apply.
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        ParBuilder::add_channel(self, cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        ParBuilder::connect(self, from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        ParBuilder::inject(self, at, to, port, msg);
    }
}

/// Aggregate statistics of one parallel run.
#[derive(Debug, Clone)]
pub struct ParStats {
    /// Total events processed (deliveries + ticks).
    pub events_processed: u64,
    /// Messages delivered to instances.
    pub messages_delivered: u64,
    /// Channel-level duplicate deliveries injected.
    pub duplicates: u64,
    /// Channel-level retransmissions counted (message still delivered).
    pub retransmits: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Per-instance breakdown (`busy_until` is 0: no virtual clock).
    pub per_instance: Vec<InstanceStats>,
}

impl ParStats {
    /// Throughput in messages per wall-clock second.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.messages_delivered as f64 / secs
    }
}

struct Counters {
    in_flight: AtomicI64,
    events: AtomicU64,
    deliveries: AtomicU64,
    duplicates: AtomicU64,
    retransmits: AtomicU64,
}

/// A runnable parallel execution.
pub struct ParExecutor {
    instances: Vec<ParInstance>,
    channels: Arc<[ChannelConfig]>,
    injected: Vec<(Time, InstanceId, usize, Message)>,
    seed: u64,
    workers: usize,
    batch_size: usize,
}

impl ParExecutor {
    /// Execute to quiescence and return run statistics.
    ///
    /// # Panics
    /// Re-raises the first panic of any component handler.
    #[must_use]
    pub fn run(self) -> ParStats {
        let started = Instant::now();
        let workers = self.workers;
        let counters = Arc::new(Counters {
            in_flight: AtomicI64::new(self.injected.len() as i64),
            events: AtomicU64::new(0),
            deliveries: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
        });

        let (txs, rxs): (Vec<Sender<WorkerMsg>>, Vec<Receiver<WorkerMsg>>) =
            (0..workers).map(|_| unbounded()).unzip();

        // Shard instances: worker w owns instance slots with id % workers == w.
        let total_instances = self.instances.len();
        let mut shards: Vec<Vec<Option<ParInstance>>> = (0..workers)
            .map(|_| {
                std::iter::repeat_with(|| None)
                    .take(total_instances)
                    .collect()
            })
            .collect();
        let worker_of = |i: usize| i % workers;
        for (i, inst) in self.instances.into_iter().enumerate() {
            shards[worker_of(i)][i] = Some(inst);
        }

        // Per-worker injection batches, in global dispatch order.
        let mut inject_batches: Vec<Vec<Work>> = (0..workers).map(|_| Vec::new()).collect();
        let injected_empty = self.injected.is_empty();
        for (_, to, port, msg) in self.injected {
            inject_batches[worker_of(to.0)].push(Work::Deliver { dst: to, port, msg });
        }

        let mut handles = Vec::with_capacity(workers);
        for (w, (shard, rx)) in shards.into_iter().zip(rxs).enumerate() {
            let ctx = WorkerCtx {
                idx: w,
                workers,
                batch_size: self.batch_size,
                rx,
                txs: txs.clone(),
                channels: Arc::clone(&self.channels),
                counters: Arc::clone(&counters),
                rng: StdRng::seed_from_u64(
                    self.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("blazes-par-{w}"))
                    .spawn(move || ctx.run(shard))
                    .expect("spawn worker thread"),
            );
        }

        // Dispatch injections (workers are already listening).
        for (w, batch) in inject_batches.into_iter().enumerate() {
            if !batch.is_empty() {
                let _ = txs[w].send(WorkerMsg::Batch(batch));
            }
        }
        if injected_empty {
            // Nothing will ever decrement the counter to trigger shutdown.
            for tx in &txs {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
        }
        drop(txs);

        let mut per_instance: Vec<(usize, InstanceStats)> = Vec::with_capacity(total_instances);
        let mut panic_payload = None;
        for handle in handles {
            match handle.join() {
                Ok(stats) => per_instance.extend(stats),
                Err(payload) => {
                    // Keep the first worker's payload: later panics are
                    // usually cascades of the originating failure.
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        per_instance.sort_by_key(|&(i, _)| i);

        ParStats {
            events_processed: counters.events.load(Ordering::SeqCst),
            messages_delivered: counters.deliveries.load(Ordering::SeqCst),
            duplicates: counters.duplicates.load(Ordering::SeqCst),
            retransmits: counters.retransmits.load(Ordering::SeqCst),
            workers,
            wall_time: started.elapsed(),
            per_instance: per_instance.into_iter().map(|(_, s)| s).collect(),
        }
    }
}

/// Broadcasts shutdown if the owning worker unwinds, so sibling workers
/// (and the joining coordinator) cannot deadlock on a dead peer.
struct PanicGuard {
    txs: Vec<Sender<WorkerMsg>>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            for tx in &self.txs {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
        }
    }
}

struct WorkerCtx {
    idx: usize,
    workers: usize,
    batch_size: usize,
    rx: Receiver<WorkerMsg>,
    txs: Vec<Sender<WorkerMsg>>,
    channels: Arc<[ChannelConfig]>,
    counters: Arc<Counters>,
    rng: StdRng,
}

impl WorkerCtx {
    fn run(mut self, mut shard: Vec<Option<ParInstance>>) -> Vec<(usize, InstanceStats)> {
        let guard = PanicGuard {
            txs: self.txs.clone(),
        };
        let mut local: VecDeque<Work> = VecDeque::new();
        let mut out_bufs: Vec<Vec<Work>> = (0..self.workers).map(|_| Vec::new()).collect();
        let mut processed: Vec<u64> = vec![0; shard.len()];
        let mut now: Time = 0;

        'outer: loop {
            match self.rx.recv() {
                Ok(WorkerMsg::Batch(batch)) => {
                    local.extend(batch);
                    while let Some(work) = local.pop_front() {
                        now += 1;
                        self.process(
                            work,
                            now,
                            &mut shard,
                            &mut processed,
                            &mut local,
                            &mut out_bufs,
                        );
                        // This event and everything it spawned are now
                        // accounted; if the global counter hits zero the
                        // whole run is quiescent.
                        if self.counters.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                            for tx in &self.txs {
                                let _ = tx.send(WorkerMsg::Shutdown);
                            }
                            break 'outer;
                        }
                    }
                    self.flush_all(&mut out_bufs);
                }
                Ok(WorkerMsg::Shutdown) | Err(_) => break 'outer,
            }
        }
        drop(guard);

        shard
            .into_iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.map(|inst| {
                    (
                        i,
                        InstanceStats {
                            name: inst.component.name().to_string(),
                            processed: processed[i],
                            busy_until: 0,
                        },
                    )
                })
            })
            .collect()
    }

    fn process(
        &mut self,
        work: Work,
        now: Time,
        shard: &mut [Option<ParInstance>],
        processed: &mut [u64],
        local: &mut VecDeque<Work>,
        out_bufs: &mut [Vec<Work>],
    ) {
        self.counters.events.fetch_add(1, Ordering::Relaxed);
        let (instance, ctx) = match work {
            Work::Deliver { dst, port, msg } => {
                self.counters.deliveries.fetch_add(1, Ordering::Relaxed);
                let inst = shard[dst.0]
                    .as_mut()
                    .expect("delivery routed to owning worker");
                let mut ctx = Context::new(now, dst);
                inst.component.on_message(port, msg, &mut ctx);
                processed[dst.0] += 1;
                (dst, ctx)
            }
            Work::Tick { dst } => {
                let inst = shard[dst.0].as_mut().expect("tick routed to owning worker");
                let mut ctx = Context::new(now, dst);
                inst.component.on_tick(&mut ctx);
                (dst, ctx)
            }
        };

        let Context { emitted, ticks, .. } = ctx;
        for (out_port, msg) in emitted {
            self.route(instance, out_port, msg, shard, local, out_bufs);
        }
        for _delay in ticks {
            // No virtual clock: a tick fires as the instance's next
            // self-event, preserving order relative to its own emissions.
            self.enqueue(Work::Tick { dst: instance }, local, out_bufs);
        }
    }

    /// Route one emission along every wire of `(instance, out_port)`.
    fn route(
        &mut self,
        from: InstanceId,
        out_port: usize,
        msg: Message,
        shard: &[Option<ParInstance>],
        local: &mut VecDeque<Work>,
        out_bufs: &mut [Vec<Work>],
    ) {
        let wires = shard[from.0]
            .as_ref()
            .expect("emitting instance is local")
            .wires
            .get(out_port)
            .map_or(&[][..], Vec::as_slice);
        for &wire in wires {
            let cfg = &self.channels[wire.channel];
            if cfg.loss_prob > 0.0 && self.rng.random::<f64>() < cfg.loss_prob {
                // The first transmission is lost and retried; delivery
                // still happens (at-least-once), just counted.
                self.counters.retransmits.fetch_add(1, Ordering::Relaxed);
            }
            let duplicate =
                cfg.duplicate_prob > 0.0 && self.rng.random::<f64>() < cfg.duplicate_prob;
            self.enqueue(
                Work::Deliver {
                    dst: wire.dst,
                    port: wire.dst_port,
                    msg: msg.clone(),
                },
                local,
                out_bufs,
            );
            if duplicate {
                self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                self.enqueue(
                    Work::Deliver {
                        dst: wire.dst,
                        port: wire.dst_port,
                        msg: msg.clone(),
                    },
                    local,
                    out_bufs,
                );
            }
        }
    }

    /// Account one in-flight unit and queue the work item for its owner.
    fn enqueue(&self, work: Work, local: &mut VecDeque<Work>, out_bufs: &mut [Vec<Work>]) {
        self.counters.in_flight.fetch_add(1, Ordering::SeqCst);
        let dst_worker = match &work {
            Work::Deliver { dst, .. } | Work::Tick { dst } => dst.0 % self.workers,
        };
        if dst_worker == self.idx {
            local.push_back(work);
        } else {
            let buf = &mut out_bufs[dst_worker];
            buf.push(work);
            // Batch-size trigger lives here — the only place a buffer
            // grows — so it costs O(1) per emission, not O(workers) per
            // processed event.
            if buf.len() >= self.batch_size {
                let _ = self.txs[dst_worker].send(WorkerMsg::Batch(std::mem::take(buf)));
            }
        }
    }

    /// Flush every non-empty cross-worker buffer (must run before the
    /// worker blocks on its receive channel again).
    fn flush_all(&self, out_bufs: &mut [Vec<Work>]) {
        for (w, buf) in out_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let _ = self.txs[w].send(WorkerMsg::Batch(std::mem::take(buf)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::sinks::CollectorSink;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg)
        }))
    }

    #[test]
    fn delivers_every_message_exactly_once() {
        let mut b = ParBuilder::new(1).with_workers(4);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan());
        for i in 0..500i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 500);
        assert_eq!(stats.messages_delivered, 1_000); // 500 at echo + 500 at sink
        let expected: std::collections::BTreeSet<Message> =
            (0..500i64).map(|i| Message::data([i])).collect();
        assert_eq!(sink.message_set(), expected);
    }

    #[test]
    fn single_wire_preserves_send_order() {
        // One producer, one sink, possibly on different workers: per-wire
        // FIFO must hold whatever the thread interleaving.
        let mut b = ParBuilder::new(3).with_workers(2).with_batch_size(7);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan());
        for i in 0..200i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let _ = b.build().run();
        let expected: Vec<Message> = (0..200i64).map(|i| Message::data([i])).collect();
        assert_eq!(sink.messages(), expected);
    }

    #[test]
    fn fan_out_reaches_every_wire() {
        let mut b = ParBuilder::new(0).with_workers(3);
        let e = b.add_instance(echo());
        let s1 = CollectorSink::new();
        let s2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(s1.clone()));
        let i2 = b.add_instance(Box::new(s2.clone()));
        let ch = b.add_channel(ChannelConfig::instant());
        b.connect(e, 0, i1, 0, ch);
        b.connect(e, 0, i2, 0, ch);
        b.inject(0, e, 0, Message::data([9i64]));
        let _ = b.build().run();
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn multi_hop_pipeline_terminates() {
        // A chain long enough to bounce between workers repeatedly.
        let mut b = ParBuilder::new(5).with_workers(4).with_batch_size(3);
        let sink = CollectorSink::new();
        let mut prev = b.add_instance(echo());
        let first = prev;
        for _ in 0..10 {
            let next = b.add_instance(echo());
            b.connect_with(prev, 0, next, 0, ChannelConfig::lan());
            prev = next;
        }
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(prev, 0, s, 0, ChannelConfig::lan());
        for i in 0..50i64 {
            b.inject(0, first, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(sink.len(), 50);
        assert_eq!(stats.messages_delivered, 50 * 12);
    }

    #[test]
    fn duplicates_are_injected_and_counted() {
        let mut b = ParBuilder::new(11).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::instant().with_duplicates(1.0));
        for i in 0..10i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.duplicates, 10);
        assert_eq!(sink.len(), 20);
    }

    #[test]
    fn lossy_channels_still_deliver() {
        let mut b = ParBuilder::new(13).with_workers(2);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan().with_loss(1.0));
        for i in 0..25i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.retransmits, 25);
        assert_eq!(sink.len(), 25, "losses are retransmitted, never dropped");
    }

    #[test]
    fn ticks_fire_and_terminate() {
        struct Ticker {
            fired: Arc<AtomicU64>,
        }
        impl Component for Ticker {
            fn on_message(&mut self, _: usize, _: Message, ctx: &mut Context) {
                ctx.schedule_tick(5_000);
            }
            fn on_tick(&mut self, _ctx: &mut Context) {
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "ticker"
            }
        }
        let fired = Arc::new(AtomicU64::new(0));
        let mut b = ParBuilder::new(0).with_workers(2);
        let t = b.add_instance(Box::new(Ticker {
            fired: fired.clone(),
        }));
        b.inject(0, t, 0, Message::Eos);
        let stats = b.build().run();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(stats.events_processed, 2); // delivery + tick
    }

    #[test]
    fn empty_run_terminates() {
        let mut b = ParBuilder::new(0).with_workers(2);
        let _ = b.add_instance(echo());
        let stats = b.build().run();
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn per_instance_stats_cover_all_instances() {
        let mut b = ParBuilder::new(2).with_workers(3);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, 0, s, 0, ChannelConfig::lan());
        for i in 0..7i64 {
            b.inject(0, e, 0, Message::data([i]));
        }
        let stats = b.build().run();
        assert_eq!(stats.per_instance.len(), 2);
        assert_eq!(stats.per_instance[0].name, "echo");
        assert_eq!(stats.per_instance[0].processed, 7);
        assert_eq!(stats.per_instance[1].processed, 7);
    }
}
