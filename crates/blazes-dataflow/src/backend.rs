//! The backend abstraction shared by the execution substrates.
//!
//! Higher layers (the mini Storm engine, the case studies) assemble a
//! topology by calling the same five operations whatever the backend:
//! adding instances, registering channels, wiring ports, setting service
//! times and injecting external inputs. [`ExecutorBuilder`] captures that
//! surface so a topology can be compiled once and executed either on the
//! deterministic discrete-event simulator ([`crate::sim::SimBuilder`]) or
//! on the multi-worker parallel executor ([`crate::par::ParBuilder`]).

use crate::channel::ChannelConfig;
use crate::component::Component;
use crate::message::Message;
use crate::sim::{InstanceId, SimBuilder, Time};

/// A builder for an execution backend: the assembly surface shared by the
/// simulator and the parallel executor.
pub trait ExecutorBuilder {
    /// Add a component instance; returns its id.
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId;

    /// Set the per-message service time of an instance. Virtual-time
    /// backends model queueing with this; wall-clock backends may ignore
    /// it (real processing costs are paid for real).
    fn set_service_time(&mut self, id: InstanceId, service: Time);

    /// Register a channel configuration, returning a reusable handle.
    fn add_channel(&mut self, cfg: ChannelConfig) -> usize;

    /// Wire output `out_port` of `from` to input `in_port` of `to` over
    /// the channel registered as `channel`.
    fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    );

    /// Inject an external message. `at` is a virtual timestamp for the
    /// simulator; wall-clock backends use it only as an ordering key.
    fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message);

    /// Convenience: wire with a fresh channel config.
    fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }
}

/// Forward through mutable references so assembly functions generic over
/// `B: ExecutorBuilder` also accept `&mut dyn ExecutorBuilder`.
impl<B: ExecutorBuilder + ?Sized> ExecutorBuilder for &mut B {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        (**self).add_instance(component)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        (**self).set_service_time(id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        (**self).add_channel(cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        (**self).connect(from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        (**self).inject(at, to, port, msg);
    }
}

impl ExecutorBuilder for SimBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        SimBuilder::add_instance(self, component)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        SimBuilder::set_service_time(self, id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> usize {
        SimBuilder::add_channel(self, cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: usize,
        to: InstanceId,
        in_port: usize,
        channel: usize,
    ) {
        SimBuilder::connect(self, from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: usize, msg: Message) {
        SimBuilder::inject(self, at, to, port, msg);
    }
}
