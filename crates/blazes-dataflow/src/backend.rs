//! The backend abstraction shared by the execution substrates.
//!
//! Higher layers (the mini Storm engine, the case studies) assemble a
//! topology by calling the same five operations whatever the backend:
//! adding instances, registering channels, wiring ports, setting service
//! times and injecting external inputs. [`ExecutorBuilder`] captures that
//! surface so a topology can be compiled once and executed either on the
//! deterministic discrete-event simulator ([`crate::sim::SimBuilder`]) or
//! on the multi-worker parallel executor ([`crate::par::ParBuilder`]).
//!
//! # The graph-rewrite pass
//!
//! [`RewritingBuilder`] wraps any backend builder and threads every
//! assembly call through a [`RewritePass`]. The pass may interpose
//! *gate* operators on wires and redirect external injections — without
//! the assembling code knowing the topology was transformed. This is the
//! mechanism `blazes-autocoord` uses to inject the coordination a
//! [`blazes-core`](../../blazes_core/index.html) analysis proved
//! necessary: because the pass sits below the shared [`ExecutorBuilder`]
//! surface, the *same* rewritten graph is what the simulator and the
//! parallel executor both run. [`RewriteStats`] records exactly what the
//! pass touched, so callers can verify the minimality claim (a confluent
//! topology must come through with zero injected operators).

use crate::channel::ChannelConfig;
use crate::component::Component;
use crate::message::Message;
use crate::sim::{InstanceId, SimBuilder, Time};
use std::collections::BTreeSet;

/// Typed handle to a channel configuration registered with a backend
/// builder. Distinct from [`PortId`] so a channel handle can no longer be
/// passed where a port index is expected (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub usize);

/// Typed index of an input or output port on a component instance, as
/// used by the assembly surface. The runtime dispatch side
/// ([`Component::on_message`]) still sees the raw index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A builder for an execution backend: the assembly surface shared by the
/// simulator, the parallel executor and the distributed executor.
pub trait ExecutorBuilder {
    /// Add a component instance; returns its id.
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId;

    /// Set the per-message service time of an instance. Virtual-time
    /// backends model queueing with this; wall-clock backends may ignore
    /// it (real processing costs are paid for real).
    fn set_service_time(&mut self, id: InstanceId, service: Time);

    /// Register a channel configuration, returning a reusable handle.
    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId;

    /// Wire output `out_port` of `from` to input `in_port` of `to` over
    /// the channel registered as `channel`.
    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    );

    /// Inject an external message. `at` is a virtual timestamp for the
    /// simulator; wall-clock backends use it only as an ordering key.
    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message);

    /// Convenience: wire with a fresh channel config.
    fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }
}

/// Forward through mutable references so assembly functions generic over
/// `B: ExecutorBuilder` also accept `&mut dyn ExecutorBuilder`.
impl<B: ExecutorBuilder + ?Sized> ExecutorBuilder for &mut B {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        (**self).add_instance(component)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        (**self).set_service_time(id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        (**self).add_channel(cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        (**self).connect(from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        (**self).inject(at, to, port, msg);
    }
}

/// What a [`RewritePass`] decides for one wire about to be connected.
#[derive(Debug, Clone)]
pub enum WireAction {
    /// Wire producer → consumer as requested.
    Keep,
    /// Route the wire through `gate`: the producer connects to
    /// `gate`'s input `gate_in_port` over the originally requested
    /// channel, and `gate` output 0 is wired to the original destination
    /// over `delivery` (once per distinct `(gate, destination, port)`).
    Via {
        /// The interposed operator instance.
        gate: InstanceId,
        /// Input port of the gate receiving the redirected traffic.
        gate_in_port: PortId,
        /// Channel used from the gate to the original destination.
        delivery: ChannelConfig,
    },
    /// Do not wire the producer again — an earlier wire from the same
    /// producer port already feeds `gate`, whose broadcast covers this
    /// destination (the fan-out collapse an ordering service performs).
    /// The gate → destination wiring is still ensured.
    Absorb {
        /// The gate already fed by this producer port.
        gate: InstanceId,
        /// Channel used from the gate to the original destination.
        delivery: ChannelConfig,
    },
}

/// What a [`RewritePass`] decides for one external injection.
#[derive(Debug, Clone)]
pub enum InjectAction {
    /// Inject as requested.
    Keep,
    /// Redirect the message into `gate` instead, ensuring `gate` output 0
    /// is wired to the original destination over `delivery`.
    Via {
        /// The interposed operator instance.
        gate: InstanceId,
        /// Input port of the gate receiving the redirected message.
        gate_in_port: PortId,
        /// Channel used from the gate to the original destination.
        delivery: ChannelConfig,
    },
    /// Drop the message — an identical copy was already routed through
    /// `gate` (an ordering gate broadcasts, so per-destination copies of
    /// one logical message collapse to a single send). The gate →
    /// destination wiring is still ensured so the broadcast reaches this
    /// destination.
    Absorb {
        /// The gate that already carries the message.
        gate: InstanceId,
        /// Channel used from the gate to the original destination.
        delivery: ChannelConfig,
    },
}

/// Allocator handed to a [`RewritePass`] for creating gate instances on
/// the underlying backend: `(component, service_time) -> id`.
pub type GateAlloc<'a> = dyn FnMut(Box<dyn Component>, Time) -> InstanceId + 'a;

/// A topology transformation applied during assembly by
/// [`RewritingBuilder`]. Implementations decide, per wire and per
/// injection, whether traffic should flow through an interposed operator.
pub trait RewritePass {
    /// Observe an instance being added (after the backend assigned `id`).
    /// Passes typically match `name` against the components a
    /// coordination spec flags.
    fn observe_instance(&mut self, _id: InstanceId, _name: &str) {}

    /// Decide the fate of one wire. `alloc` creates gate instances on the
    /// wrapped backend.
    fn rewrite_wire(
        &mut self,
        _from: InstanceId,
        _out_port: PortId,
        _to: InstanceId,
        _in_port: PortId,
        _alloc: &mut GateAlloc<'_>,
    ) -> WireAction {
        WireAction::Keep
    }

    /// Decide the fate of one external injection.
    fn rewrite_injection(
        &mut self,
        _at: Time,
        _to: InstanceId,
        _port: PortId,
        _msg: &Message,
        _alloc: &mut GateAlloc<'_>,
    ) -> InjectAction {
        InjectAction::Keep
    }
}

/// The identity pass: rewrites nothing. Lets callers run the rewrite
/// plumbing unconditionally and read zeroed [`RewriteStats`] as the
/// *proof* that a topology needed no coordination.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPass;

impl RewritePass for NoopPass {}

/// Accounting of what a rewrite pass did to a topology — the overhead
/// ledger of the "minimal coordination" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Gate operator instances the pass allocated.
    pub injected_operators: usize,
    /// Wires re-routed through a gate.
    pub rewritten_wires: usize,
    /// Wires absorbed into a gate's broadcast (fan-out collapse).
    pub absorbed_wires: usize,
    /// External injections redirected into a gate.
    pub redirected_injections: usize,
    /// External injections absorbed as broadcast duplicates.
    pub absorbed_injections: usize,
}

impl RewriteStats {
    /// Did the pass leave the topology untouched?
    #[must_use]
    pub fn is_untouched(&self) -> bool {
        *self == RewriteStats::default()
    }
}

/// An [`ExecutorBuilder`] that applies a [`RewritePass`] to every wire and
/// injection before forwarding to the wrapped backend builder. Works
/// identically over [`SimBuilder`] and [`crate::par::ParBuilder`] — the
/// point of doing the rewrite at this layer.
pub struct RewritingBuilder<'a, B: ExecutorBuilder + ?Sized, P: RewritePass> {
    inner: &'a mut B,
    pass: P,
    stats: RewriteStats,
    /// `(gate, dst, dst_port)` triples already wired gate→destination.
    gate_wires: BTreeSet<(InstanceId, InstanceId, PortId)>,
}

impl<'a, B: ExecutorBuilder + ?Sized, P: RewritePass> RewritingBuilder<'a, B, P> {
    /// Wrap `inner`, threading assembly through `pass`.
    pub fn new(inner: &'a mut B, pass: P) -> Self {
        RewritingBuilder {
            inner,
            pass,
            stats: RewriteStats::default(),
            gate_wires: BTreeSet::new(),
        }
    }

    /// Finish assembly: recover the pass and the accounting.
    #[must_use]
    pub fn finish(self) -> (P, RewriteStats) {
        (self.pass, self.stats)
    }

    /// Accounting so far.
    #[must_use]
    pub fn stats(&self) -> RewriteStats {
        self.stats
    }

    /// Wire `gate` output 0 to `(to, in_port)` over `delivery`, once.
    fn ensure_gate_wire(
        &mut self,
        gate: InstanceId,
        to: InstanceId,
        in_port: PortId,
        delivery: &ChannelConfig,
    ) {
        if self.gate_wires.insert((gate, to, in_port)) {
            self.inner
                .connect_with(gate, PortId(0), to, in_port, delivery.clone());
        }
    }
}

impl<B: ExecutorBuilder + ?Sized, P: RewritePass> ExecutorBuilder for RewritingBuilder<'_, B, P> {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let name = component.name().to_string();
        let id = self.inner.add_instance(component);
        self.pass.observe_instance(id, &name);
        id
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        self.inner.set_service_time(id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        self.inner.add_channel(cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        let inner = &mut *self.inner;
        let mut allocated = 0usize;
        let mut alloc = |c: Box<dyn Component>, st: Time| {
            let id = inner.add_instance(c);
            inner.set_service_time(id, st);
            allocated += 1;
            id
        };
        let action = self
            .pass
            .rewrite_wire(from, out_port, to, in_port, &mut alloc);
        self.stats.injected_operators += allocated;
        match action {
            WireAction::Keep => self.inner.connect(from, out_port, to, in_port, channel),
            WireAction::Via {
                gate,
                gate_in_port,
                delivery,
            } => {
                self.stats.rewritten_wires += 1;
                self.inner
                    .connect(from, out_port, gate, gate_in_port, channel);
                self.ensure_gate_wire(gate, to, in_port, &delivery);
            }
            WireAction::Absorb { gate, delivery } => {
                self.stats.absorbed_wires += 1;
                self.ensure_gate_wire(gate, to, in_port, &delivery);
            }
        }
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        let inner = &mut *self.inner;
        let mut allocated = 0usize;
        let mut alloc = |c: Box<dyn Component>, st: Time| {
            let id = inner.add_instance(c);
            inner.set_service_time(id, st);
            allocated += 1;
            id
        };
        let action = self.pass.rewrite_injection(at, to, port, &msg, &mut alloc);
        self.stats.injected_operators += allocated;
        match action {
            InjectAction::Keep => self.inner.inject(at, to, port, msg),
            InjectAction::Via {
                gate,
                gate_in_port,
                delivery,
            } => {
                self.stats.redirected_injections += 1;
                self.ensure_gate_wire(gate, to, port, &delivery);
                self.inner.inject(at, gate, gate_in_port, msg);
            }
            InjectAction::Absorb { gate, delivery } => {
                self.stats.absorbed_injections += 1;
                self.ensure_gate_wire(gate, to, port, &delivery);
            }
        }
    }
}

impl ExecutorBuilder for SimBuilder {
    fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        SimBuilder::add_instance(self, component)
    }

    fn set_service_time(&mut self, id: InstanceId, service: Time) {
        SimBuilder::set_service_time(self, id, service);
    }

    fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        SimBuilder::add_channel(self, cfg)
    }

    fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        SimBuilder::connect(self, from, out_port, to, in_port, channel);
    }

    fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        SimBuilder::inject(self, at, to, port, msg);
    }
}

/// Selects the execution substrate a topology should run on, with the
/// per-backend knobs that used to be spread across `run_*`, `run_*_parallel`
/// and `*_tuned` function families.
///
/// One value of this enum is the single argument that picks between the
/// deterministic simulator, the in-process parallel executor and the
/// multi-process distributed executor; generic runners accept
/// `&BackendSpec` instead of growing a third copy of every entry point.
#[derive(Debug, Clone)]
pub enum BackendSpec {
    /// The deterministic discrete-event simulator ([`crate::sim::SimBuilder`]).
    Sim,
    /// The in-process multi-worker parallel executor
    /// ([`crate::par::ParBuilder`]).
    Par {
        /// Number of OS worker threads.
        workers: usize,
        /// Scheduling/fault/speculation knobs for the run.
        tuning: crate::par::ParTuning,
    },
    /// The distributed multi-process executor ([`crate::dist::run_dist`]).
    /// The topology itself is named by [`crate::dist::DistSpec::topology`]
    /// and resolved through a [`crate::dist::Registry`] so every process
    /// can re-assemble it locally.
    Dist(crate::dist::DistSpec),
}

impl BackendSpec {
    /// Parallel backend with `workers` threads and default tuning.
    #[must_use]
    pub fn par(workers: usize) -> Self {
        BackendSpec::Par {
            workers,
            tuning: crate::par::ParTuning::default(),
        }
    }

    /// Short human-readable backend name (`sim` / `par` / `dist`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Sim => "sim",
            BackendSpec::Par { .. } => "par",
            BackendSpec::Dist(_) => "dist",
        }
    }
}

/// Run statistics tagged by the backend that produced them. The variants
/// wrap the per-backend stats structs unchanged so no fidelity is lost;
/// the accessors cover callers that only care about one substrate.
#[derive(Debug, Clone)]
pub enum BackendRunStats {
    /// Simulator statistics.
    Sim(crate::metrics::RunStats),
    /// Parallel-executor statistics.
    Par(crate::par::ParStats),
    /// Distributed-executor statistics.
    Dist(crate::dist::DistStats),
}

impl BackendRunStats {
    /// Simulator stats, if this run used the simulator.
    #[must_use]
    pub fn as_sim(&self) -> Option<&crate::metrics::RunStats> {
        match self {
            BackendRunStats::Sim(s) => Some(s),
            _ => None,
        }
    }

    /// Parallel-executor stats, if this run used the parallel backend.
    #[must_use]
    pub fn as_par(&self) -> Option<&crate::par::ParStats> {
        match self {
            BackendRunStats::Par(s) => Some(s),
            _ => None,
        }
    }

    /// Distributed-executor stats, if this run used the distributed backend.
    #[must_use]
    pub fn as_dist(&self) -> Option<&crate::dist::DistStats> {
        match self {
            BackendRunStats::Dist(s) => Some(s),
            _ => None,
        }
    }

    /// Total data messages delivered to component inputs, whatever the
    /// backend counted them as.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        match self {
            BackendRunStats::Sim(s) => s.messages_delivered,
            BackendRunStats::Par(s) => s.messages_delivered,
            BackendRunStats::Dist(s) => s.messages_delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Context, FnComponent};
    use crate::sinks::CollectorSink;
    use crate::value::Value;

    fn tagger(tag: i64) -> Box<dyn Component> {
        Box::new(FnComponent::new(
            format!("tagger[{tag}]"),
            move |_, msg: Message, ctx: &mut Context| {
                if let Some(t) = msg.as_data() {
                    let v = t.get(0).and_then(Value::as_int).unwrap_or(0);
                    ctx.emit(0, Message::data([v + tag]));
                } else {
                    ctx.emit(0, msg);
                }
            },
        ))
    }

    /// A pass that interposes a `+1000` tagger on every wire into the
    /// instance named `"target"`, and redirects injections likewise.
    #[derive(Default)]
    struct TagTarget {
        target: Option<InstanceId>,
        gate: Option<InstanceId>,
    }

    impl TagTarget {
        fn gate(&mut self, alloc: &mut GateAlloc<'_>) -> InstanceId {
            *self.gate.get_or_insert_with(|| alloc(tagger(1_000), 0))
        }
    }

    impl RewritePass for TagTarget {
        fn observe_instance(&mut self, id: InstanceId, name: &str) {
            if name == "target" {
                self.target = Some(id);
            }
        }

        fn rewrite_wire(
            &mut self,
            _from: InstanceId,
            _out_port: PortId,
            to: InstanceId,
            _in_port: PortId,
            alloc: &mut GateAlloc<'_>,
        ) -> WireAction {
            if Some(to) == self.target {
                WireAction::Via {
                    gate: self.gate(alloc),
                    gate_in_port: PortId(0),
                    delivery: ChannelConfig::instant(),
                }
            } else {
                WireAction::Keep
            }
        }

        fn rewrite_injection(
            &mut self,
            _at: Time,
            to: InstanceId,
            _port: PortId,
            _msg: &Message,
            alloc: &mut GateAlloc<'_>,
        ) -> InjectAction {
            if Some(to) == self.target {
                InjectAction::Via {
                    gate: self.gate(alloc),
                    gate_in_port: PortId(0),
                    delivery: ChannelConfig::instant(),
                }
            } else {
                InjectAction::Keep
            }
        }
    }

    fn assemble<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
        let src = b.add_instance(Box::new(FnComponent::new(
            "src",
            |_, msg, ctx: &mut Context| ctx.emit(0, msg),
        )));
        let target = b.add_instance(Box::new(FnComponent::new(
            "target",
            |_, msg, ctx: &mut Context| ctx.emit(0, msg),
        )));
        let s = b.add_instance(Box::new(sink));
        b.connect_with(src, PortId(0), target, PortId(0), ChannelConfig::lan());
        b.connect_with(target, PortId(0), s, PortId(0), ChannelConfig::instant());
        b.inject(0, src, PortId(0), Message::data([1i64]));
        b.inject(0, target, PortId(0), Message::data([2i64]));
    }

    #[test]
    fn rewriting_builder_splices_gates_on_wires_and_injections() {
        let sink = CollectorSink::new();
        let mut sim = SimBuilder::new(0);
        let mut rb = RewritingBuilder::new(&mut sim, TagTarget::default());
        assemble(&mut rb, sink.clone());
        let (_, stats) = rb.finish();
        assert_eq!(stats.injected_operators, 1, "one shared gate");
        assert_eq!(stats.rewritten_wires, 1, "src->target rerouted");
        assert_eq!(stats.redirected_injections, 1, "direct injection rerouted");
        sim.build().run(None);
        // Both paths into `target` went through the +1000 tagger.
        let vals: std::collections::BTreeSet<i64> = sink
            .messages()
            .iter()
            .filter_map(|m| m.as_data().and_then(|t| t.get(0)).and_then(Value::as_int))
            .collect();
        assert_eq!(vals, [1_001i64, 1_002].into_iter().collect());
    }

    #[test]
    fn noop_pass_is_invisible() {
        let direct = CollectorSink::new();
        let mut sim = SimBuilder::new(3);
        assemble(&mut sim, direct.clone());
        sim.build().run(None);

        let wrapped = CollectorSink::new();
        let mut sim2 = SimBuilder::new(3);
        let mut rb = RewritingBuilder::new(&mut sim2, NoopPass);
        assemble(&mut rb, wrapped.clone());
        let (_, stats) = rb.finish();
        assert!(stats.is_untouched());
        sim2.build().run(None);
        assert_eq!(direct.messages(), wrapped.messages());
    }

    #[test]
    fn absorb_drops_the_message_but_wires_the_gate() {
        /// Absorb every injection to `target` after the first.
        #[derive(Default)]
        struct AbsorbDups {
            target: Option<InstanceId>,
            gate: Option<InstanceId>,
            seen: usize,
        }
        impl RewritePass for AbsorbDups {
            fn observe_instance(&mut self, id: InstanceId, name: &str) {
                if name == "target" {
                    self.target = Some(id);
                }
            }
            fn rewrite_injection(
                &mut self,
                _at: Time,
                to: InstanceId,
                _port: PortId,
                _msg: &Message,
                alloc: &mut GateAlloc<'_>,
            ) -> InjectAction {
                if Some(to) != self.target {
                    return InjectAction::Keep;
                }
                let gate = *self.gate.get_or_insert_with(|| alloc(tagger(0), 0));
                self.seen += 1;
                if self.seen == 1 {
                    InjectAction::Via {
                        gate,
                        gate_in_port: PortId(0),
                        delivery: ChannelConfig::instant(),
                    }
                } else {
                    InjectAction::Absorb {
                        gate,
                        delivery: ChannelConfig::instant(),
                    }
                }
            }
        }

        let sink = CollectorSink::new();
        let mut sim = SimBuilder::new(0);
        let mut rb = RewritingBuilder::new(&mut sim, AbsorbDups::default());
        let target = rb.add_instance(Box::new(FnComponent::new(
            "target",
            |_, msg, ctx: &mut Context| ctx.emit(0, msg),
        )));
        let s = rb.add_instance(Box::new(sink.clone()));
        rb.connect_with(target, PortId(0), s, PortId(0), ChannelConfig::instant());
        for _ in 0..3 {
            rb.inject(0, target, PortId(0), Message::data([7i64]));
        }
        let (_, stats) = rb.finish();
        assert_eq!(stats.redirected_injections, 1);
        assert_eq!(stats.absorbed_injections, 2);
        sim.build().run(None);
        assert_eq!(sink.len(), 1, "duplicates collapsed to one delivery");
    }
}
