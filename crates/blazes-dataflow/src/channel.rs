//! Channel (stream instance) configuration.
//!
//! Channels model the network between component instances: a base latency,
//! uniform random jitter (the source of nondeterministic delivery orders),
//! and the fault behaviors that motivate the paper's anomalies — duplicate
//! delivery and message loss with retransmission (at-least-once semantics).

use crate::sim::Time;

/// Per-channel delivery behavior. All times are virtual microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    /// Fixed propagation delay added to every delivery.
    pub base_latency: Time,
    /// Maximum extra random delay, drawn uniformly from `[0, jitter]`.
    /// Non-zero jitter reorders concurrent messages.
    pub jitter: Time,
    /// Probability that a message is delivered twice (at-least-once
    /// duplication, as under Storm replay).
    pub duplicate_prob: f64,
    /// Probability that the first transmission is lost. Lost messages are
    /// retransmitted once after [`ChannelConfig::retransmit_delay`], so
    /// delivery is still guaranteed (at-least-once, not at-most-once).
    pub loss_prob: f64,
    /// Delay before a lost message is retransmitted.
    pub retransmit_delay: Time,
    /// Deliver in send order per wire (TCP-like). Punctuation semantics
    /// assume the seal cannot overtake the records it covers, so this
    /// defaults to `true`; nondeterminism still arises from interleaving
    /// *across* producers. Set `false` for datagram-like channels.
    pub fifo: bool,
}

impl ChannelConfig {
    /// A LAN-like lossless channel: 1 ms base latency, 1 ms jitter.
    #[must_use]
    pub fn lan() -> Self {
        ChannelConfig {
            base_latency: 1_000,
            jitter: 1_000,
            duplicate_prob: 0.0,
            loss_prob: 0.0,
            retransmit_delay: 10_000,
            fifo: true,
        }
    }

    /// An *ordered* channel: fixed latency, zero jitter, no faults. With a
    /// deterministic latency, delivery order equals send order (the event
    /// queue breaks time ties by insertion sequence), which models the FIFO
    /// links out of an ordering service.
    #[must_use]
    pub fn ordered(latency: Time) -> Self {
        ChannelConfig {
            base_latency: latency,
            jitter: 0,
            duplicate_prob: 0.0,
            loss_prob: 0.0,
            retransmit_delay: 0,
            fifo: true,
        }
    }

    /// A zero-latency, deterministic channel (useful in unit tests).
    #[must_use]
    pub fn instant() -> Self {
        ChannelConfig {
            base_latency: 0,
            jitter: 0,
            duplicate_prob: 0.0,
            loss_prob: 0.0,
            retransmit_delay: 0,
            fifo: true,
        }
    }

    /// Builder-style: set FIFO behavior.
    #[must_use]
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Builder-style: set base latency.
    #[must_use]
    pub fn with_latency(mut self, base: Time) -> Self {
        self.base_latency = base;
        self
    }

    /// Builder-style: set jitter bound.
    #[must_use]
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set duplicate probability.
    #[must_use]
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.duplicate_prob = p;
        self
    }

    /// Builder-style: set loss probability (with retransmission).
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.loss_prob = p;
        self
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lan() {
        assert_eq!(ChannelConfig::default(), ChannelConfig::lan());
    }

    #[test]
    fn builder_chain() {
        let c = ChannelConfig::instant()
            .with_latency(5)
            .with_jitter(7)
            .with_duplicates(0.1);
        assert_eq!(c.base_latency, 5);
        assert_eq!(c.jitter, 7);
        assert!((c.duplicate_prob - 0.1).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = ChannelConfig::lan().with_loss(1.5);
    }
}
