//! Messages exchanged between component instances.
//!
//! Besides data tuples, streams may carry *punctuations* ([`Message::Seal`])
//! promising that no further records will arrive for a partition (paper
//! Section II-A), and end-of-stream markers used by finite runs.

use crate::value::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The key of a sealed partition: attribute names with the partition's
/// values, e.g. `campaign = "shoes"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SealKey {
    /// `(attribute, value)` pairs identifying the partition, sorted by
    /// attribute name.
    pub parts: Vec<(String, Value)>,
}

impl SealKey {
    /// Build a seal key from attribute/value pairs.
    pub fn new<I, S, V>(parts: I) -> SealKey
    where
        I: IntoIterator<Item = (S, V)>,
        S: Into<String>,
        V: Into<Value>,
    {
        let mut parts: Vec<(String, Value)> = parts
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        parts.sort();
        SealKey { parts }
    }

    /// The sealed attribute names, in sorted order.
    pub fn attrs(&self) -> impl Iterator<Item = &str> {
        self.parts.iter().map(|(k, _)| k.as_str())
    }

    /// The value sealed for `attr`, if present.
    #[must_use]
    pub fn value_of(&self, attr: &str) -> Option<&Value> {
        self.parts.iter().find(|(k, _)| k == attr).map(|(_, v)| v)
    }
}

impl fmt::Display for SealKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seal{{")?;
        for (i, (k, v)) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A message on a stream instance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Message {
    /// A data tuple.
    Data(Tuple),
    /// A punctuation: the producer will emit no more records matching `key`.
    Seal(SealKey),
    /// The producer will emit nothing further at all (finite runs).
    Eos,
}

impl Message {
    /// Build a data message.
    pub fn data<I, V>(values: I) -> Message
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Message::Data(Tuple::new(values))
    }

    /// The tuple payload, if this is a data message.
    #[must_use]
    pub fn as_data(&self) -> Option<&Tuple> {
        match self {
            Message::Data(t) => Some(t),
            _ => None,
        }
    }

    /// Is this a punctuation or end-of-stream control message?
    #[must_use]
    pub fn is_control(&self) -> bool {
        !matches!(self, Message::Data(_))
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Data(t) => write!(f, "{t}"),
            Message::Seal(k) => write!(f, "{k}"),
            Message::Eos => write!(f, "eos"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_key_sorted_and_queryable() {
        let k = SealKey::new([("window", Value::Int(3)), ("campaign", Value::str("shoes"))]);
        let attrs: Vec<_> = k.attrs().collect();
        assert_eq!(attrs, vec!["campaign", "window"]);
        assert_eq!(k.value_of("campaign"), Some(&Value::str("shoes")));
        assert_eq!(k.value_of("missing"), None);
    }

    #[test]
    fn seal_keys_equal_regardless_of_insertion_order() {
        let a = SealKey::new([("a", 1i64), ("b", 2i64)]);
        let b = SealKey::new([("b", 2i64), ("a", 1i64)]);
        assert_eq!(a, b);
    }

    #[test]
    fn message_kinds() {
        let d = Message::data([1i64, 2]);
        assert!(!d.is_control());
        assert_eq!(d.as_data().unwrap().arity(), 2);
        assert!(Message::Eos.is_control());
        assert!(Message::Seal(SealKey::new([("k", 1i64)])).is_control());
    }

    #[test]
    fn display_forms() {
        let k = SealKey::new([("campaign", Value::str("shoes"))]);
        assert_eq!(k.to_string(), "seal{campaign=shoes}");
        assert_eq!(Message::Eos.to_string(), "eos");
    }
}
