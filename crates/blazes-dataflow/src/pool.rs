//! A tiny scoped fork-join worker pool, shared by the parallel executor's
//! sizing heuristics and the Bloom engine's sharded rule evaluation.
//!
//! The pool is deliberately structural rather than persistent: callers
//! hand over a set of independent shard closures, [`fork_join`] runs them
//! on scoped OS threads and returns the results in shard order. Results
//! are position-stable, so a deterministic merge (e.g. unioning
//! `BTreeSet`s at a stratum boundary) produces bit-identical output
//! regardless of which worker ran which shard — the property the Bloom
//! engine's differential tests pin.
//!
//! Worker counts default to the same heuristic the parallel executor
//! uses: [`default_workers`] reads `available_parallelism`, capped at
//! [`MAX_POOL_WORKERS`].

/// Cap on derived worker counts (mirrors the par backend's default cap).
pub const MAX_POOL_WORKERS: usize = 8;

/// The worker count used when the caller does not pin one: the machine's
/// available parallelism, capped at [`MAX_POOL_WORKERS`] and floored at 1.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, std::num::NonZeroUsize::get)
        .clamp(1, MAX_POOL_WORKERS)
}

/// Run one closure per shard on scoped threads and collect the results in
/// shard order.
///
/// Shard 0 runs inline on the calling thread (so a single-shard call never
/// pays a spawn), the rest run on scoped threads. Panics in any shard
/// propagate to the caller.
pub fn fork_join<R, F>(mut jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    match jobs.len() {
        0 => return Vec::new(),
        1 => return vec![jobs.pop().expect("len checked")()],
        _ => {}
    }
    let first = jobs.remove(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(job))
            .collect::<Vec<_>>();
        let mut results = vec![first()];
        for h in handles {
            results.push(h.join().expect("pool shard panicked"));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workers_is_positive_and_capped() {
        let w = default_workers();
        assert!(w >= 1);
        assert!(w <= MAX_POOL_WORKERS);
    }

    #[test]
    fn fork_join_preserves_shard_order() {
        let jobs: Vec<_> = (0..6).map(|i| move || i * 10).collect();
        assert_eq!(fork_join(jobs), vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn fork_join_handles_empty_and_single() {
        assert_eq!(fork_join(Vec::<fn() -> u32>::new()), Vec::<u32>::new());
        assert_eq!(fork_join(vec![|| 7]), vec![7]);
    }

    #[test]
    fn fork_join_shares_borrowed_state() {
        let data: Vec<u64> = (0..100).collect();
        let shards: Vec<_> = data.chunks(30).collect();
        let jobs: Vec<_> = shards
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let total: u64 = fork_join(jobs).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }
}
