//! The framed wire codec of the distributed backend.
//!
//! Every frame is `MAGIC ("BLZW") + tag (u8) + length (u32 LE) + payload`.
//! The magic prefix lets a [`FrameDecoder`] resynchronize after garbage
//! (it scans forward to the next magic), the length prefix bounds every
//! read, and [`MAX_FRAME`] caps allocations so a corrupt length cannot
//! balloon memory. All integers are little-endian; strings are
//! `u32 length + UTF-8 bytes`; booleans are a single `0`/`1` byte.
//!
//! The codec is hand-rolled on purpose: the workspace's `serde` is a
//! no-op shim, and the frame set is small and closed. Decoding is total —
//! any input either yields a frame, asks for more bytes, or returns a
//! typed [`WireError`] after consuming the offending region; it never
//! panics and never desynchronizes the stream.

use crate::message::{Message, SealKey};
use crate::sim::Time;
use crate::value::{Tuple, Value};

/// Frame preamble: resync anchor for the decoder.
pub const MAGIC: [u8; 4] = *b"BLZW";

/// Upper bound on a frame's payload size (16 MiB). Larger lengths are
/// treated as corruption, not as a request to allocate.
pub const MAX_FRAME: usize = 16 << 20;

/// Everything that crosses the parent↔worker boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → parent, first frame on a fresh connection.
    Hello {
        /// The worker's process index.
        index: u32,
        /// The worker's incarnation: 0 for the original spawn, bumped by
        /// the coordinator on every respawn. Lets the coordinator drop
        /// hellos from stale incarnations.
        epoch: u32,
        /// Frames from the coordinator this incarnation has already
        /// consumed — nonzero only on a same-incarnation reconnect, where
        /// it trims the coordinator's replay.
        resume_recv: u64,
    },
    /// Parent → worker: the partition plan (SPMD assembly inputs).
    Plan {
        /// Registered topology name.
        topology: String,
        /// Parameter string for the assembly function.
        params: String,
        /// Shared fault/run seed.
        seed: u64,
        /// Total worker process count.
        processes: u32,
        /// This worker's index.
        index: u32,
        /// Par-runtime threads this worker should run.
        workers: u32,
        /// Work-stealing scheduler?
        stealing: bool,
        /// Time-warp speculation?
        speculation: bool,
        /// Should the worker record trace events and ship them back?
        trace: bool,
        /// The incarnation this plan is addressed to (echo of the
        /// worker's hello epoch; a respawned worker resumes here).
        epoch: u32,
        /// Heartbeat interval the worker should honor, in milliseconds.
        heartbeat_ms: u32,
    },
    /// A cross-partition message (either direction).
    Data {
        /// Global wire number.
        wire: u64,
        /// Egress sequence number on that wire (duplicates repeat one).
        seq: u64,
        /// The payload.
        msg: Message,
    },
    /// Worker → parent: the local runtime quiesced at these counters.
    Idle {
        /// Data frames this worker has written so far.
        sent: u64,
        /// Data frames this worker has received so far.
        recv: u64,
    },
    /// Parent → worker: confirm stability (answer with `ProbeAck`).
    Probe {
        /// Round identifier, echoed in the ack.
        nonce: u64,
    },
    /// Worker → parent: answer to a `Probe`.
    ProbeAck {
        /// Echo of the probe's nonce.
        nonce: u64,
        /// Data frames written at answer time.
        sent: u64,
        /// Data frames received at answer time.
        recv: u64,
        /// Was the local runtime settled with a drained egress queue?
        idle: bool,
    },
    /// Parent → worker: finish the run and stream back results.
    Collect,
    /// Worker → parent: contents of one sink this worker owns.
    SinkResult {
        /// Index into the assembly's sink set.
        sink: u32,
        /// The sink's `(time, message)` entries in arrival order.
        entries: Vec<(Time, Message)>,
    },
    /// Worker → parent: final run statistics; the worker is done.
    Done {
        /// Events its runtime processed.
        events: u64,
        /// Messages delivered on local wires.
        delivered: u64,
        /// Duplicates drawn on local wires.
        duplicates: u64,
        /// Retransmits drawn on local wires.
        retransmits: u64,
        /// End-of-run rescue passes.
        rescue_passes: u64,
        /// Egress frames produced after `Collect` (dropped).
        late: u64,
    },
    /// Parent → worker: exit now.
    Shutdown,
    /// Worker → parent: fatal worker-side failure.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Worker → parent: one thread's drained trace events, shipped during
    /// collection when the plan asked for tracing. Events travel as the
    /// packed 5-word form of `blazes_obs::Event` so the codec stays
    /// independent of the tracer's enum; unknown kinds are dropped at
    /// ingestion, not at decode.
    Trace {
        /// Originating process index (Chrome `pid` lane).
        pid: u32,
        /// Originating thread (ring) index within that process.
        tid: u32,
        /// Packed events: `[ts_ns, dur_ns, kind, a, b]` each.
        events: Vec<[u64; 5]>,
    },
    /// Worker → parent: liveness beacon, sent every `heartbeat_ms` even
    /// while busy. Doubles as an idle keepalive: when `idle` is set the
    /// counters are also a re-announcement of the worker's quiesced
    /// state, self-healing a lost `Idle` frame.
    Heartbeat {
        /// The worker's incarnation.
        epoch: u32,
        /// Data frames written so far.
        sent: u64,
        /// Data frames received so far.
        recv: u64,
        /// Is the local runtime currently quiesced with a drained egress
        /// queue?
        idle: bool,
    },
    /// Parent → worker: cumulative delivery acknowledgements, one
    /// `(wire, highest_seq_delivered)` pair per wire, letting the worker
    /// trim its egress log.
    Ack {
        /// Acknowledged watermarks, sorted by wire for determinism.
        acks: Vec<(u64, u64)>,
    },
}

/// Decode-side failures. Each error consumes the offending bytes, so the
/// decoder stays usable on the same stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A frame header announced a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown frame tag.
    BadTag(u8),
    /// The payload did not parse as its tag's layout.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_IDLE: u8 = 4;
const TAG_PROBE: u8 = 5;
const TAG_PROBE_ACK: u8 = 6;
const TAG_COLLECT: u8 = 7;
const TAG_SINK_RESULT: u8 = 8;
const TAG_DONE: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_ERROR: u8 = 11;
const TAG_TRACE: u8 = 12;
const TAG_HEARTBEAT: u8 = 13;
const TAG_ACK: u8 = 14;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(2);
            put_bool(out, *b);
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.0.len() as u32);
    for v in &t.0 {
        put_value(out, v);
    }
}

fn put_seal_key(out: &mut Vec<u8>, k: &SealKey) {
    put_u32(out, k.parts.len() as u32);
    for (name, v) in &k.parts {
        put_str(out, name);
        put_value(out, v);
    }
}

/// The canonical encoded form of one message — the byte string hashed by
/// the recovery layer's content dedup ([`super::recover::fnv1a`]), kept
/// here so it is the codec (not the caller) that defines equality.
#[must_use]
pub fn message_bytes(m: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    put_message(&mut out, m);
    out
}

fn put_message(out: &mut Vec<u8>, m: &Message) {
    match m {
        Message::Data(t) => {
            out.push(0);
            put_tuple(out, t);
        }
        Message::Seal(k) => {
            out.push(1);
            put_seal_key(out, k);
        }
        Message::Eos => out.push(2),
    }
}

/// Encode one frame, magic and length prefix included.
#[must_use]
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = match frame {
        Frame::Hello {
            index,
            epoch,
            resume_recv,
        } => {
            put_u32(&mut payload, *index);
            put_u32(&mut payload, *epoch);
            put_u64(&mut payload, *resume_recv);
            TAG_HELLO
        }
        Frame::Plan {
            topology,
            params,
            seed,
            processes,
            index,
            workers,
            stealing,
            speculation,
            trace,
            epoch,
            heartbeat_ms,
        } => {
            put_str(&mut payload, topology);
            put_str(&mut payload, params);
            put_u64(&mut payload, *seed);
            put_u32(&mut payload, *processes);
            put_u32(&mut payload, *index);
            put_u32(&mut payload, *workers);
            put_bool(&mut payload, *stealing);
            put_bool(&mut payload, *speculation);
            put_bool(&mut payload, *trace);
            put_u32(&mut payload, *epoch);
            put_u32(&mut payload, *heartbeat_ms);
            TAG_PLAN
        }
        Frame::Data { wire, seq, msg } => {
            put_u64(&mut payload, *wire);
            put_u64(&mut payload, *seq);
            put_message(&mut payload, msg);
            TAG_DATA
        }
        Frame::Idle { sent, recv } => {
            put_u64(&mut payload, *sent);
            put_u64(&mut payload, *recv);
            TAG_IDLE
        }
        Frame::Probe { nonce } => {
            put_u64(&mut payload, *nonce);
            TAG_PROBE
        }
        Frame::ProbeAck {
            nonce,
            sent,
            recv,
            idle,
        } => {
            put_u64(&mut payload, *nonce);
            put_u64(&mut payload, *sent);
            put_u64(&mut payload, *recv);
            put_bool(&mut payload, *idle);
            TAG_PROBE_ACK
        }
        Frame::Collect => TAG_COLLECT,
        Frame::SinkResult { sink, entries } => {
            put_u32(&mut payload, *sink);
            put_u32(&mut payload, entries.len() as u32);
            for (time, msg) in entries {
                put_u64(&mut payload, *time);
                put_message(&mut payload, msg);
            }
            TAG_SINK_RESULT
        }
        Frame::Done {
            events,
            delivered,
            duplicates,
            retransmits,
            rescue_passes,
            late,
        } => {
            put_u64(&mut payload, *events);
            put_u64(&mut payload, *delivered);
            put_u64(&mut payload, *duplicates);
            put_u64(&mut payload, *retransmits);
            put_u64(&mut payload, *rescue_passes);
            put_u64(&mut payload, *late);
            TAG_DONE
        }
        Frame::Shutdown => TAG_SHUTDOWN,
        Frame::Error { message } => {
            put_str(&mut payload, message);
            TAG_ERROR
        }
        Frame::Trace { pid, tid, events } => {
            put_u32(&mut payload, *pid);
            put_u32(&mut payload, *tid);
            put_u32(&mut payload, events.len() as u32);
            for words in events {
                for w in words {
                    put_u64(&mut payload, *w);
                }
            }
            TAG_TRACE
        }
        Frame::Heartbeat {
            epoch,
            sent,
            recv,
            idle,
        } => {
            put_u32(&mut payload, *epoch);
            put_u64(&mut payload, *sent);
            put_u64(&mut payload, *recv);
            put_bool(&mut payload, *idle);
            TAG_HEARTBEAT
        }
        Frame::Ack { acks } => {
            put_u32(&mut payload, acks.len() as u32);
            for (wire, upto) in acks {
                put_u64(&mut payload, *wire);
                put_u64(&mut payload, *upto);
            }
            TAG_ACK
        }
    };
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(tag);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounded cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed("payload underrun"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bad boolean")),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-utf8 string"))
    }

    /// Sanity-bound a declared element count: every element occupies at
    /// least one byte, so a count beyond the remaining payload is
    /// corruption, not a huge allocation request.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(WireError::Malformed("impossible element count"));
        }
        Ok(n)
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Str(self.string()?)),
            2 => Ok(Value::Bool(self.boolean()?)),
            _ => Err(WireError::Malformed("bad value tag")),
        }
    }

    fn tuple(&mut self) -> Result<Tuple, WireError> {
        let n = self.count()?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(Tuple(values))
    }

    fn seal_key(&mut self) -> Result<SealKey, WireError> {
        let n = self.count()?;
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.string()?;
            let value = self.value()?;
            parts.push((name, value));
        }
        Ok(SealKey { parts })
    }

    fn message(&mut self) -> Result<Message, WireError> {
        match self.u8()? {
            0 => Ok(Message::Data(self.tuple()?)),
            1 => Ok(Message::Seal(self.seal_key()?)),
            2 => Ok(Message::Eos),
            _ => Err(WireError::Malformed("bad message tag")),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing payload bytes"))
        }
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let frame = match tag {
        TAG_HELLO => Frame::Hello {
            index: c.u32()?,
            epoch: c.u32()?,
            resume_recv: c.u64()?,
        },
        TAG_PLAN => Frame::Plan {
            topology: c.string()?,
            params: c.string()?,
            seed: c.u64()?,
            processes: c.u32()?,
            index: c.u32()?,
            workers: c.u32()?,
            stealing: c.boolean()?,
            speculation: c.boolean()?,
            trace: c.boolean()?,
            epoch: c.u32()?,
            heartbeat_ms: c.u32()?,
        },
        TAG_DATA => Frame::Data {
            wire: c.u64()?,
            seq: c.u64()?,
            msg: c.message()?,
        },
        TAG_IDLE => Frame::Idle {
            sent: c.u64()?,
            recv: c.u64()?,
        },
        TAG_PROBE => Frame::Probe { nonce: c.u64()? },
        TAG_PROBE_ACK => Frame::ProbeAck {
            nonce: c.u64()?,
            sent: c.u64()?,
            recv: c.u64()?,
            idle: c.boolean()?,
        },
        TAG_COLLECT => Frame::Collect,
        TAG_SINK_RESULT => {
            let sink = c.u32()?;
            let n = c.count()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let time = c.u64()?;
                let msg = c.message()?;
                entries.push((time, msg));
            }
            Frame::SinkResult { sink, entries }
        }
        TAG_DONE => Frame::Done {
            events: c.u64()?,
            delivered: c.u64()?,
            duplicates: c.u64()?,
            retransmits: c.u64()?,
            rescue_passes: c.u64()?,
            late: c.u64()?,
        },
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_ERROR => Frame::Error {
            message: c.string()?,
        },
        TAG_TRACE => {
            let pid = c.u32()?;
            let tid = c.u32()?;
            let n = c.count()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let mut words = [0u64; 5];
                for w in &mut words {
                    *w = c.u64()?;
                }
                events.push(words);
            }
            Frame::Trace { pid, tid, events }
        }
        TAG_HEARTBEAT => Frame::Heartbeat {
            epoch: c.u32()?,
            sent: c.u64()?,
            recv: c.u64()?,
            idle: c.boolean()?,
        },
        TAG_ACK => {
            let n = c.count()?;
            let mut acks = Vec::with_capacity(n);
            for _ in 0..n {
                let wire = c.u64()?;
                let upto = c.u64()?;
                acks.push((wire, upto));
            }
            Frame::Ack { acks }
        }
        other => return Err(WireError::BadTag(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Incremental frame decoder over an unreliable byte stream.
///
/// Feed arbitrary chunks through [`FrameDecoder::push`], then drain with
/// [`FrameDecoder::next_frame`]: `Ok(Some(frame))` per complete frame,
/// `Ok(None)` when more bytes are needed, `Err` for a corrupt region —
/// after which the decoder has consumed the bad bytes and keeps working
/// on whatever follows.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A fresh decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (test hook).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Take the undecoded residue, leaving the decoder empty. Used to
    /// hand off a stream mid-decode (e.g. bytes a hello reader slurped
    /// past the handshake frame) without losing what follows.
    #[must_use]
    pub fn take_buffered(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Scan to the next magic, dropping garbage. Keeps the last 3 bytes
    /// when no magic is found — they may be a magic prefix split across
    /// chunks.
    fn sync(&mut self) -> bool {
        if let Some(pos) = self
            .buf
            .windows(MAGIC.len())
            .position(|window| window == MAGIC)
        {
            if pos > 0 {
                // `a` = bytes of garbage skipped to reach the next magic.
                blazes_obs::record(blazes_obs::EventKind::Resync, pos as u64, 0);
            }
            self.buf.drain(..pos);
            true
        } else {
            let keep = self.buf.len().min(MAGIC.len() - 1);
            self.buf.drain(..self.buf.len() - keep);
            false
        }
    }

    /// Try to decode the next complete frame.
    ///
    /// # Errors
    /// [`WireError`] for oversized, unknown-tag or malformed frames; the
    /// offending region is consumed either way.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if !self.sync() {
            return Ok(None);
        }
        if self.buf.len() < 9 {
            return Ok(None);
        }
        let tag = self.buf[4];
        let len = u32::from_le_bytes(self.buf[5..9].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            // Drop just the magic: the "length" is untrustworthy, so
            // resync from whatever follows it.
            self.buf.drain(..MAGIC.len());
            return Err(WireError::Oversized(len));
        }
        if self.buf.len() < 9 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf.drain(..9 + len).skip(9).collect();
        decode_payload(tag, &payload).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                index: 3,
                epoch: 2,
                resume_recv: 17,
            },
            Frame::Plan {
                topology: "ad-report".to_string(),
                params: "seed=5\nreplicas=4".to_string(),
                seed: 42,
                processes: 4,
                index: 2,
                workers: 2,
                stealing: true,
                speculation: false,
                trace: true,
                epoch: 1,
                heartbeat_ms: 25,
            },
            Frame::Data {
                wire: 17,
                seq: 9,
                msg: Message::Data(Tuple(vec![
                    Value::Int(-5),
                    Value::Str("héllo".to_string()),
                    Value::Bool(true),
                ])),
            },
            Frame::Data {
                wire: 0,
                seq: 0,
                msg: Message::Seal(SealKey {
                    parts: vec![
                        ("campaign".to_string(), Value::Int(7)),
                        ("batch".to_string(), Value::Str("b".to_string())),
                    ],
                }),
            },
            Frame::Data {
                wire: 1,
                seq: 2,
                msg: Message::Eos,
            },
            Frame::Idle { sent: 10, recv: 4 },
            Frame::Probe { nonce: 99 },
            Frame::ProbeAck {
                nonce: 99,
                sent: 10,
                recv: 4,
                idle: true,
            },
            Frame::Collect,
            Frame::SinkResult {
                sink: 1,
                entries: vec![
                    (0, Message::data([1i64, 2])),
                    (7, Message::Eos),
                    (
                        9,
                        Message::Seal(SealKey {
                            parts: vec![("k".to_string(), Value::Bool(false))],
                        }),
                    ),
                ],
            },
            Frame::Done {
                events: 1,
                delivered: 2,
                duplicates: 3,
                retransmits: 4,
                rescue_passes: 5,
                late: 6,
            },
            Frame::Shutdown,
            Frame::Error {
                message: "boom".to_string(),
            },
            Frame::Trace {
                pid: 2,
                tid: 1,
                events: vec![[1, 0, 0, 7, 8], [u64::MAX, 5, 13, 0, 3]],
            },
            Frame::Trace {
                pid: 1,
                tid: 0,
                events: vec![],
            },
            Frame::Heartbeat {
                epoch: 1,
                sent: 12,
                recv: 7,
                idle: false,
            },
            Frame::Heartbeat {
                epoch: 0,
                sent: 0,
                recv: 0,
                idle: true,
            },
            Frame::Ack { acks: vec![] },
            Frame::Ack {
                acks: vec![(3, 0), (u64::MAX, 41)],
            },
        ]
    }

    #[test]
    fn round_trips_every_frame() {
        let mut dec = FrameDecoder::new();
        for frame in sample_frames() {
            dec.push(&encode(&frame));
            assert_eq!(dec.next_frame().unwrap(), Some(frame));
            assert_eq!(dec.next_frame().unwrap(), None);
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decodes_across_arbitrary_chunk_boundaries() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode(f));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in bytes {
            dec.push(&[byte]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn truncated_frame_waits_then_completes() {
        let bytes = encode(&Frame::Probe { nonce: 7 });
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..bytes.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.push(&bytes[bytes.len() - 3..]);
        assert_eq!(dec.next_frame().unwrap(), Some(Frame::Probe { nonce: 7 }));
    }

    #[test]
    fn oversized_length_is_rejected_and_stream_resyncs() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(TAG_PROBE);
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&encode(&Frame::Collect));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::Oversized(_))));
        // The stream recovers on the next valid frame.
        assert_eq!(dec.next_frame().unwrap(), Some(Frame::Collect));
    }

    #[test]
    fn bad_tag_is_rejected_without_desync() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(200);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&encode(&Frame::Shutdown));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame(), Err(WireError::BadTag(200)));
        assert_eq!(dec.next_frame().unwrap(), Some(Frame::Shutdown));
    }

    #[test]
    fn garbage_prefix_is_skipped_to_the_next_magic() {
        let hello = Frame::Hello {
            index: 1,
            epoch: 0,
            resume_recv: 0,
        };
        let mut bytes = vec![0xde, 0xad, 0xbe, 0xef, b'B', b'L'];
        bytes.extend_from_slice(&encode(&hello));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(hello));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(TAG_PROBE);
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.push(0xff);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::Malformed("trailing payload bytes"))
        );
    }

    #[test]
    fn message_bytes_matches_the_data_frame_payload_tail() {
        // `message_bytes` must be exactly the encoding a Data frame
        // carries after its wire+seq header, or the recovery layer's
        // content hashes would disagree with what crossed the wire.
        let msg = Message::Data(Tuple(vec![Value::Int(3), Value::Str("x".to_string())]));
        let framed = encode(&Frame::Data {
            wire: 1,
            seq: 2,
            msg: msg.clone(),
        });
        assert_eq!(&framed[9 + 16..], &message_bytes(&msg)[..]);
    }

    #[test]
    fn impossible_element_count_is_malformed_not_oom() {
        // A SinkResult claiming u32::MAX entries in a tiny payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(TAG_SINK_RESULT);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::Malformed("impossible element count"))
        );
    }
}
