//! Pure data structures for the dist backend's crash-recovery protocol.
//!
//! Everything here is deliberately free of I/O so the protocol invariants
//! can be property-tested in isolation (see `tests/prop_recovery.rs`):
//!
//! * [`EgressLog`] — a sender-side log of encoded frames, trimmed by acks.
//!   Invariant: trimming never drops a frame the receiver has not
//!   acknowledged.
//! * [`SeqLedger`] — receiver-side per-wire sequence tracking. Each
//!   sequence number is accepted as [`SeqVerdict::Fresh`] exactly once.
//! * [`ReplayDedup`] — content-level duplicate suppression for replayed
//!   streams whose re-emission *order* may differ from the original run
//!   (a respawned worker recomputes its outputs deterministically as a
//!   multiset, but interleaving across wires can permute).
//! * [`ReplayLog`] — the coordinator's post-fault frame history for one
//!   worker, replayed verbatim into a respawned process.
//! * [`ChaosSpec`] — seeded fail-stop (SIGKILL) crash schedules for the
//!   chaos differential.
//! * [`DistTuning`] / [`FailureCause`] — supervision knobs and forensic
//!   failure verdicts.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Byte transport used between the coordinator and its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Unix domain sockets under a per-run temp directory (default).
    #[default]
    Unix,
    /// Loopback TCP — an addressable endpoint, so reconnect-with-backoff
    /// works and workers could in principle span machines.
    Tcp,
}

/// Supervision and recovery knobs for a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistTuning {
    /// Transport used for the coordinator↔worker byte streams.
    pub transport: Transport,
    /// How often workers emit [`Frame::Heartbeat`](super::wire::Frame).
    pub heartbeat_every: Duration,
    /// How long the coordinator tolerates silence from a worker before
    /// declaring it dead ([`FailureCause::HeartbeatTimeout`]). Generous by
    /// default: on a loaded 1-core box heartbeat threads can starve for
    /// whole seconds, and crash detection is near-instant anyway via
    /// reader EOF + child reaping.
    pub worker_deadline: Duration,
    /// Maximum respawns per worker before the run fails with
    /// [`FailureCause::BudgetExhausted`].
    pub respawn_budget: u32,
    /// Base of the exponential respawn backoff (doubles per respawn).
    pub respawn_backoff: Duration,
    /// Master switch: when false, any worker failure is immediately fatal
    /// (the pre-recovery behaviour, minus the better forensics).
    pub recovery: bool,
}

impl Default for DistTuning {
    fn default() -> Self {
        DistTuning {
            transport: Transport::Unix,
            heartbeat_every: Duration::from_millis(25),
            worker_deadline: Duration::from_secs(30),
            respawn_budget: 3,
            respawn_backoff: Duration::from_millis(40),
            recovery: true,
        }
    }
}

impl DistTuning {
    /// Select the byte transport.
    #[must_use]
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Set the worker heartbeat interval.
    #[must_use]
    pub fn with_heartbeat_every(mut self, every: Duration) -> Self {
        self.heartbeat_every = every;
        self
    }

    /// Set the per-worker silence deadline.
    #[must_use]
    pub fn with_worker_deadline(mut self, deadline: Duration) -> Self {
        self.worker_deadline = deadline;
        self
    }

    /// Set the per-worker respawn budget.
    #[must_use]
    pub fn with_respawn_budget(mut self, budget: u32) -> Self {
        self.respawn_budget = budget;
        self
    }

    /// Set the base respawn backoff.
    #[must_use]
    pub fn with_respawn_backoff(mut self, backoff: Duration) -> Self {
        self.respawn_backoff = backoff;
        self
    }

    /// Enable or disable crash recovery entirely.
    #[must_use]
    pub fn with_recovery(mut self, recovery: bool) -> Self {
        self.recovery = recovery;
        self
    }

    /// Exponential backoff before the `used + 1`-th respawn of a worker:
    /// `respawn_backoff · 2^used`, capped at 2 s.
    #[must_use]
    pub fn backoff_for(&self, used: u32) -> Duration {
        let cap = Duration::from_secs(2);
        let mult = 1u32 << used.min(16);
        self.respawn_backoff
            .checked_mul(mult)
            .map_or(cap, |d| d.min(cap))
    }
}

/// Why a worker was declared dead — carried in
/// [`DistError::WorkerFailed`](super::DistError::WorkerFailed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The child process exited (status code, if one was reported). A
    /// SIGKILL'd child reports `None`.
    Exited(Option<i32>),
    /// The worker's socket hit EOF while the child was still unreaped.
    Eof,
    /// No frame (not even a heartbeat) for this many milliseconds.
    HeartbeatTimeout(u64),
    /// A (re)spawned worker never completed the Hello handshake.
    HelloTimeout,
    /// Spawning the worker process itself failed.
    SpawnFailed(String),
    /// The worker's byte stream stopped decoding — non-recoverable,
    /// since we cannot trust anything it sent.
    Corrupt(String),
    /// The worker reported a fatal error of its own — non-recoverable.
    Reported(String),
    /// The respawn budget ran out; `last` is the final failure.
    BudgetExhausted {
        /// Respawns consumed before giving up.
        respawns: u32,
        /// The failure that exhausted the budget.
        last: Box<FailureCause>,
    },
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Exited(Some(code)) => write!(f, "exited with status {code}"),
            FailureCause::Exited(None) => write!(f, "killed by signal"),
            FailureCause::Eof => write!(f, "socket EOF"),
            FailureCause::HeartbeatTimeout(ms) => {
                write!(f, "no heartbeat for {ms} ms")
            }
            FailureCause::HelloTimeout => write!(f, "hello handshake timed out"),
            FailureCause::SpawnFailed(e) => write!(f, "spawn failed: {e}"),
            FailureCause::Corrupt(e) => write!(f, "wire corruption: {e}"),
            FailureCause::Reported(e) => write!(f, "worker error: {e}"),
            FailureCause::BudgetExhausted { respawns, last } => {
                write!(
                    f,
                    "respawn budget exhausted after {respawns} respawns; last: {last}"
                )
            }
        }
    }
}

/// When, within a worker's lifetime, a chaos kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// After the coordinator has routed this many frames *to* the worker.
    RoutedFrames(u64),
    /// After the coordinator has received this many heartbeats from the
    /// worker. Guaranteed to fire: the first heartbeat is sent
    /// immediately after the Plan handshake.
    Heartbeats(u64),
    /// This long after the run's routing phase started. Not used by
    /// [`ChaosSpec::seeded`] — firing is not guaranteed on a fast run.
    AfterMillis(u64),
}

/// One scheduled SIGKILL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Worker index to kill.
    pub worker: usize,
    /// When to kill it.
    pub point: KillPoint,
}

/// A seeded fail-stop crash schedule. Kills are SIGKILL — the victim
/// gets no chance to flush, ack, or clean up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The scheduled kills. Each fires at most once.
    pub kills: Vec<Kill>,
}

impl ChaosSpec {
    /// No crashes.
    #[must_use]
    pub fn none() -> Self {
        ChaosSpec::default()
    }

    /// Derive a deterministic schedule of `crashes` kills from `seed`.
    ///
    /// Kill points alternate between early heartbeats (guaranteed to
    /// fire even on a run that routes few frames) and routed-frame
    /// counts within `frame_span` (mid-stream kills). Wall-clock points
    /// are never chosen — they might not fire before the run finishes,
    /// which would make "the respawn actually happened" assertions flaky.
    #[must_use]
    pub fn seeded(seed: u64, crashes: u32, processes: u32, frame_span: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a5_0000_0000_0000);
        let mut kills = Vec::new();
        for n in 0..crashes {
            let worker = (rng.next_u64() % u64::from(processes.max(1))) as usize;
            let point = if frame_span == 0 || n % 2 == 0 {
                KillPoint::Heartbeats(1 + rng.next_u64() % 3)
            } else {
                KillPoint::RoutedFrames(1 + rng.next_u64() % frame_span)
            };
            kills.push(Kill { worker, point });
        }
        ChaosSpec { kills }
    }

    /// True when the schedule contains no kills.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// One logged egress frame awaiting acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedFrame {
    /// Wire the frame was sent on.
    pub wire: u64,
    /// Per-wire sequence number.
    pub seq: u64,
    /// The full encoded frame bytes, resent verbatim on reconnect.
    pub bytes: Vec<u8>,
}

/// Sender-side output log: every unacknowledged frame sent on any wire,
/// in send order. Trimmed by [`Frame::Ack`](super::wire::Frame) so memory
/// stays bounded; on reconnect the whole log is resent.
#[derive(Debug, Default)]
pub struct EgressLog {
    frames: VecDeque<LoggedFrame>,
}

impl EgressLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        EgressLog::default()
    }

    /// Record one sent frame.
    pub fn append(&mut self, wire: u64, seq: u64, bytes: Vec<u8>) {
        self.frames.push_back(LoggedFrame { wire, seq, bytes });
    }

    /// The receiver has acknowledged everything on `wire` up to and
    /// including `upto`; drop those entries.
    pub fn ack(&mut self, wire: u64, upto: u64) {
        self.frames.retain(|f| f.wire != wire || f.seq > upto);
    }

    /// Frames not yet acknowledged, oldest first.
    pub fn unacked(&self) -> impl Iterator<Item = &LoggedFrame> {
        self.frames.iter()
    }

    /// Number of unacknowledged frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when every sent frame has been acknowledged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Receiver-side verdict for one arriving sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// First sighting — deliver it.
    Fresh,
    /// Already delivered (a replay or wire-level duplicate) — drop it.
    Duplicate,
    /// Skipped ahead: `expected` is the sequence number we were owed.
    Gap {
        /// The next sequence number the ledger would have accepted.
        expected: u64,
    },
}

/// Per-wire expected-sequence tracking on the receiving side. FIFO
/// transports plus replay-from-zero semantics mean a simple "next
/// expected" counter per wire suffices: anything below is a duplicate,
/// anything above is a protocol violation.
#[derive(Debug, Default)]
pub struct SeqLedger {
    next: HashMap<u64, u64>,
}

impl SeqLedger {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        SeqLedger::default()
    }

    /// Classify an arriving `(wire, seq)` and advance the ledger when it
    /// is fresh.
    pub fn accept(&mut self, wire: u64, seq: u64) -> SeqVerdict {
        let next = self.next.entry(wire).or_insert(0);
        if seq < *next {
            SeqVerdict::Duplicate
        } else if seq == *next {
            *next += 1;
            SeqVerdict::Fresh
        } else {
            SeqVerdict::Gap { expected: *next }
        }
    }

    /// Highest sequence accepted on `wire` (i.e. acknowledgeable
    /// watermark), or `None` when nothing has arrived yet.
    #[must_use]
    pub fn high(&self, wire: u64) -> Option<u64> {
        self.next.get(&wire).and_then(|n| n.checked_sub(1))
    }

    /// Wires with at least one accepted frame.
    pub fn wires(&self) -> impl Iterator<Item = u64> + '_ {
        self.next.iter().filter(|(_, n)| **n > 0).map(|(w, _)| *w)
    }

    /// Forget the listed wires: a respawned producer restarts its
    /// per-wire sequences from zero, and its re-emissions must be
    /// classified fresh-by-sequence again (content dedup happens in
    /// [`ReplayDedup`]).
    pub fn reset_wires(&mut self, wires: &[u64]) {
        for w in wires {
            self.next.remove(w);
        }
    }
}

/// Content-level (hash multiset) duplicate suppression per wire.
///
/// A respawned worker recomputes deterministically, so the *multiset* of
/// frames it re-emits on each wire matches the original run — but the
/// interleaving may permute, so sequence numbers alone cannot pair a
/// re-emission with its already-delivered original. Arming a wire with
/// the hashes of already-delivered frames lets [`ReplayDedup::admit`]
/// swallow exactly that multiset and pass everything beyond it through.
#[derive(Debug, Default)]
pub struct ReplayDedup {
    pending: HashMap<u64, HashMap<u64, u64>>,
}

impl ReplayDedup {
    /// Empty filter (admits everything).
    #[must_use]
    pub fn new() -> Self {
        ReplayDedup::default()
    }

    /// Arm `wire` with the hashes of frames already delivered on it.
    /// Replaces any previous arming for the wire.
    pub fn arm(&mut self, wire: u64, delivered_hashes: &[u64]) {
        let set = self.pending.entry(wire).or_default();
        set.clear();
        for h in delivered_hashes {
            *set.entry(*h).or_insert(0) += 1;
        }
    }

    /// Should a frame with `hash` on `wire` be delivered? Returns false
    /// (and consumes one pending count) when it is a replay of an
    /// already-delivered frame.
    pub fn admit(&mut self, wire: u64, hash: u64) -> bool {
        let Some(set) = self.pending.get_mut(&wire) else {
            return true;
        };
        match set.get_mut(&hash) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    set.remove(&hash);
                }
                if set.is_empty() {
                    self.pending.remove(&wire);
                }
                false
            }
            None => true,
        }
    }

    /// Total replayed frames still awaiting suppression.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.pending.values().flat_map(|set| set.values()).sum()
    }
}

/// Coordinator-side history of every encoded frame shipped to one worker
/// after fault injection, in ship order. Replayed from an arbitrary
/// offset to rehydrate a reconnecting or respawned worker.
#[derive(Debug, Default)]
pub struct ReplayLog {
    frames: Vec<Vec<u8>>,
}

impl ReplayLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// Record one shipped frame.
    pub fn append(&mut self, bytes: Vec<u8>) {
        self.frames.push(bytes);
    }

    /// Frames from position `from` onward (what a worker that confirmed
    /// delivery of `from` frames still needs).
    pub fn tail(&self, from: u64) -> impl Iterator<Item = &[u8]> {
        let from = usize::try_from(from).unwrap_or(usize::MAX);
        self.frames
            .iter()
            .skip(from.min(self.frames.len()))
            .map(Vec::as_slice)
    }

    /// Total frames logged.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.frames.len() as u64
    }

    /// True when nothing has been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// FNV-1a over `bytes` — the content hash used by [`ReplayDedup`].
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let t = DistTuning::default().with_respawn_backoff(Duration::from_millis(40));
        assert_eq!(t.backoff_for(0), Duration::from_millis(40));
        assert_eq!(t.backoff_for(1), Duration::from_millis(80));
        assert_eq!(t.backoff_for(2), Duration::from_millis(160));
        assert_eq!(t.backoff_for(20), Duration::from_secs(2));
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_guaranteed_to_fire() {
        let a = ChaosSpec::seeded(7, 2, 4, 100);
        let b = ChaosSpec::seeded(7, 2, 4, 100);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 2);
        for kill in &a.kills {
            assert!(kill.worker < 4);
            match kill.point {
                KillPoint::Heartbeats(n) => assert!((1..=3).contains(&n)),
                KillPoint::RoutedFrames(n) => assert!((1..=100).contains(&n)),
                KillPoint::AfterMillis(_) => panic!("seeded schedules never use wall-clock"),
            }
        }
        // Zero frame span forces heartbeat points only.
        for kill in &ChaosSpec::seeded(9, 3, 1, 0).kills {
            assert!(matches!(kill.point, KillPoint::Heartbeats(_)));
        }
    }

    #[test]
    fn egress_log_trims_only_acked() {
        let mut log = EgressLog::new();
        log.append(1, 0, vec![0]);
        log.append(2, 0, vec![1]);
        log.append(1, 1, vec![2]);
        log.append(1, 2, vec![3]);
        log.ack(1, 1);
        let left: Vec<(u64, u64)> = log.unacked().map(|f| (f.wire, f.seq)).collect();
        assert_eq!(left, vec![(2, 0), (1, 2)]);
        log.ack(2, 0);
        log.ack(1, 2);
        assert!(log.is_empty());
    }

    #[test]
    fn seq_ledger_fresh_exactly_once() {
        let mut led = SeqLedger::new();
        assert_eq!(led.accept(5, 0), SeqVerdict::Fresh);
        assert_eq!(led.accept(5, 0), SeqVerdict::Duplicate);
        assert_eq!(led.accept(5, 1), SeqVerdict::Fresh);
        assert_eq!(led.accept(5, 3), SeqVerdict::Gap { expected: 2 });
        assert_eq!(led.high(5), Some(1));
        assert_eq!(led.high(6), None);
        led.reset_wires(&[5]);
        assert_eq!(led.accept(5, 0), SeqVerdict::Fresh);
    }

    #[test]
    fn replay_dedup_swallows_exactly_the_armed_multiset() {
        let mut dd = ReplayDedup::new();
        dd.arm(1, &[10, 10, 20]);
        assert_eq!(dd.pending(), 3);
        assert!(!dd.admit(1, 10));
        assert!(!dd.admit(1, 20));
        assert!(!dd.admit(1, 10));
        // The multiset is spent: same hashes now pass through.
        assert!(dd.admit(1, 10));
        assert!(dd.admit(1, 20));
        // Unarmed wires always admit.
        assert!(dd.admit(2, 10));
        assert_eq!(dd.pending(), 0);
    }

    #[test]
    fn replay_log_tail_is_exact() {
        let mut log = ReplayLog::new();
        log.append(vec![1]);
        log.append(vec![2]);
        log.append(vec![3]);
        assert_eq!(log.len(), 3);
        let tail: Vec<&[u8]> = log.tail(1).collect();
        assert_eq!(tail, vec![&[2][..], &[3][..]]);
        assert_eq!(log.tail(3).count(), 0);
        assert_eq!(log.tail(99).count(), 0);
    }

    #[test]
    fn fnv1a_distinguishes_and_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }
}
