//! The discrete-event simulator.
//!
//! Events (message deliveries and timer ticks) are processed in virtual-time
//! order with a deterministic tiebreak (insertion sequence). All randomness
//! — delivery jitter, duplication, loss — comes from a single seeded RNG, so
//! a `(topology, workload, seed)` triple fully determines a run. Varying the
//! seed varies delivery interleavings, which is exactly the nondeterminism
//! the Blazes analysis reasons about.
//!
//! Instances process messages sequentially: each has a per-message *service
//! time*; an instance that is still busy when a delivery fires starts
//! processing at its `busy_until` watermark. Queueing delay is therefore
//! modeled without explicit queues.

use crate::backend::{ChannelId, PortId};
use crate::channel::ChannelConfig;
use crate::component::{Component, Context};
use crate::message::Message;
use crate::metrics::{InstanceStats, RunStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in microseconds.
pub type Time = u64;

/// Identifier of a component instance within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub usize);

#[derive(Debug)]
enum EventKind {
    Deliver {
        instance: InstanceId,
        port: usize,
        msg: Message,
    },
    Tick {
        instance: InstanceId,
    },
}

#[derive(Debug)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Wire {
    dst: InstanceId,
    dst_port: usize,
    channel: usize,
    /// Latest delivery time scheduled on this wire, for FIFO channels.
    last_delivery: Time,
}

struct Instance {
    component: Box<dyn Component>,
    service_time: Time,
    busy_until: Time,
    processed: u64,
    /// Outgoing wires per output port.
    wires: Vec<Vec<Wire>>,
}

/// Builder for a simulation: add instances, wire ports, inject inputs.
pub struct SimBuilder {
    instances: Vec<Instance>,
    channels: Vec<ChannelConfig>,
    injected: Vec<(Time, InstanceId, PortId, Message)>,
    seed: u64,
}

impl SimBuilder {
    /// Start a new simulation with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            instances: Vec::new(),
            channels: Vec::new(),
            injected: Vec::new(),
            seed,
        }
    }

    /// Add a component instance with the default (zero) service time.
    pub fn add_instance(&mut self, component: Box<dyn Component>) -> InstanceId {
        let id = InstanceId(self.instances.len());
        self.instances.push(Instance {
            component,
            service_time: 0,
            busy_until: 0,
            processed: 0,
            wires: Vec::new(),
        });
        id
    }

    /// Set the per-message service time of an instance.
    pub fn set_service_time(&mut self, id: InstanceId, service: Time) {
        self.instances[id.0].service_time = service;
    }

    /// Register a channel configuration and return its handle for reuse.
    pub fn add_channel(&mut self, cfg: ChannelConfig) -> ChannelId {
        self.channels.push(cfg);
        ChannelId(self.channels.len() - 1)
    }

    /// Wire output `out_port` of `from` to input `in_port` of `to` over the
    /// channel registered as `channel`.
    pub fn connect(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        channel: ChannelId,
    ) {
        assert!(channel.0 < self.channels.len(), "unknown channel handle");
        let wires = &mut self.instances[from.0].wires;
        if wires.len() <= out_port.0 {
            wires.resize_with(out_port.0 + 1, Vec::new);
        }
        wires[out_port.0].push(Wire {
            dst: to,
            dst_port: in_port.0,
            channel: channel.0,
            last_delivery: 0,
        });
    }

    /// Convenience: wire with a fresh channel config.
    pub fn connect_with(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        cfg: ChannelConfig,
    ) {
        let ch = self.add_channel(cfg);
        self.connect(from, out_port, to, in_port, ch);
    }

    /// Inject an external message (e.g. source input) at virtual time `at`.
    pub fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        self.injected.push((at, to, port, msg));
    }

    /// Finalize into a runnable [`Simulator`].
    #[must_use]
    pub fn build(self) -> Simulator {
        let mut sim = Simulator {
            instances: self.instances,
            channels: self.channels,
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(self.seed),
            next_seq: 0,
            now: 0,
            events_processed: 0,
            messages_delivered: 0,
            duplicates: 0,
            retransmits: 0,
        };
        for (at, to, port, msg) in self.injected {
            sim.push_event(
                at,
                EventKind::Deliver {
                    instance: to,
                    port: port.0,
                    msg,
                },
            );
        }
        sim
    }
}

/// A runnable simulation.
pub struct Simulator {
    instances: Vec<Instance>,
    channels: Vec<ChannelConfig>,
    queue: BinaryHeap<Reverse<Event>>,
    rng: StdRng,
    next_seq: u64,
    now: Time,
    events_processed: u64,
    messages_delivered: u64,
    duplicates: u64,
    retransmits: u64,
}

impl Simulator {
    fn push_event(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Inject a message while running (e.g. from an external driver).
    pub fn inject(&mut self, at: Time, to: InstanceId, port: PortId, msg: Message) {
        let at = at.max(self.now);
        self.push_event(
            at,
            EventKind::Deliver {
                instance: to,
                port: port.0,
                msg,
            },
        );
    }

    /// Run until the event queue drains or virtual time exceeds `until`
    /// (if given). Returns run statistics.
    pub fn run(&mut self, until: Option<Time>) -> RunStats {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if let Some(limit) = until {
                if ev.time > limit {
                    // Leave the event for a later resume.
                    self.queue.push(Reverse(ev));
                    break;
                }
            }
            self.now = ev.time;
            self.events_processed += 1;
            match ev.kind {
                EventKind::Deliver {
                    instance,
                    port,
                    msg,
                } => {
                    self.deliver(instance, port, msg, ev.time);
                }
                EventKind::Tick { instance } => {
                    let start = self.instances[instance.0].busy_until.max(ev.time);
                    let mut ctx = Context::new(start, instance);
                    self.instances[instance.0].component.on_tick(&mut ctx);
                    self.finish_processing(instance, start, ctx);
                }
            }
        }
        let stats = self.stats();
        if blazes_obs::enabled() {
            stats.export_metrics(blazes_obs::global().registry());
        }
        stats
    }

    fn deliver(&mut self, instance: InstanceId, port: usize, msg: Message, at: Time) {
        self.messages_delivered += 1;
        // `a` = instance, `b` = virtual delivery time: the trace keeps the
        // simulator's own clock alongside the wall-clock timestamp.
        blazes_obs::record(blazes_obs::EventKind::SimDelivery, instance.0 as u64, at);
        let start = self.instances[instance.0].busy_until.max(at);
        let mut ctx = Context::new(start, instance);
        self.instances[instance.0]
            .component
            .on_message(port, msg, &mut ctx);
        self.instances[instance.0].processed += 1;
        self.finish_processing(instance, start, ctx);
    }

    /// Account service time, then dispatch buffered emissions and ticks.
    fn finish_processing(&mut self, instance: InstanceId, start: Time, ctx: Context) {
        let service = self.instances[instance.0].service_time;
        let completion = start + service;
        self.instances[instance.0].busy_until = completion;

        assert!(
            !ctx.has_speculative_ops(),
            "{} used speculative emissions, which require the parallel \
             backend with ParTuning::with_speculation — the simulator \
             models blocking coordination only",
            self.instances[instance.0].component.name()
        );
        let Context { emitted, ticks, .. } = ctx;
        for (out_port, msg) in emitted {
            self.send(instance, out_port, msg, completion);
        }
        for delay in ticks {
            self.push_event(completion + delay, EventKind::Tick { instance });
        }
    }

    /// Route a message along every wire of `(instance, out_port)`.
    fn send(&mut self, from: InstanceId, out_port: usize, msg: Message, at: Time) {
        // Collect routing decisions first (borrow discipline).
        let wire_count = self.instances[from.0]
            .wires
            .get(out_port)
            .map_or(0, Vec::len);
        for w in 0..wire_count {
            let (dst, dst_port, channel) = {
                let wire = &self.instances[from.0].wires[out_port][w];
                (wire.dst, wire.dst_port, wire.channel)
            };
            let cfg = self.channels[channel].clone();
            let latency = cfg.base_latency + self.sample_jitter(cfg.jitter);
            let mut deliver_at = at + latency;

            if cfg.loss_prob > 0.0 && self.rng.random::<f64>() < cfg.loss_prob {
                // First transmission lost: retransmit once, always delivered.
                self.retransmits += 1;
                deliver_at += cfg.retransmit_delay + self.sample_jitter(cfg.jitter);
            }
            if cfg.fifo {
                // TCP-like head-of-line ordering: never deliver before an
                // earlier message on the same wire (ties break by send
                // order via the event sequence number).
                let wm = &mut self.instances[from.0].wires[out_port][w].last_delivery;
                deliver_at = deliver_at.max(*wm);
                *wm = deliver_at;
            }
            self.push_event(
                deliver_at,
                EventKind::Deliver {
                    instance: dst,
                    port: dst_port,
                    msg: msg.clone(),
                },
            );
            if cfg.duplicate_prob > 0.0 && self.rng.random::<f64>() < cfg.duplicate_prob {
                self.duplicates += 1;
                let mut dup_at = at + cfg.base_latency + self.sample_jitter(cfg.jitter.max(1));
                if cfg.fifo {
                    // A duplicate (retransmitted copy) cannot overtake the
                    // stream position either; it does not advance the
                    // watermark.
                    dup_at = dup_at.max(self.instances[from.0].wires[out_port][w].last_delivery);
                }
                self.push_event(
                    dup_at,
                    EventKind::Deliver {
                        instance: dst,
                        port: dst_port,
                        msg: msg.clone(),
                    },
                );
            }
        }
    }

    fn sample_jitter(&mut self, jitter: Time) -> Time {
        if jitter == 0 {
            0
        } else {
            self.rng.random_range(0..=jitter)
        }
    }

    /// Snapshot of run statistics.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        RunStats {
            end_time: self.now,
            events_processed: self.events_processed,
            messages_delivered: self.messages_delivered,
            duplicates: self.duplicates,
            retransmits: self.retransmits,
            per_instance: self
                .instances
                .iter()
                .map(|i| InstanceStats {
                    name: i.component.name().to_string(),
                    processed: i.processed,
                    busy_until: i.busy_until,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::sinks::CollectorSink;
    use crate::value::Value;

    fn echo() -> Box<dyn Component> {
        Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
            ctx.emit(0, msg);
        }))
    }

    #[test]
    fn single_hop_delivery() {
        let mut b = SimBuilder::new(42);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::instant());
        b.inject(0, e, PortId(0), Message::data([1i64]));
        b.inject(0, e, PortId(0), Message::data([2i64]));
        let mut sim = b.build();
        let stats = sim.run(None);
        assert_eq!(sink.len(), 2);
        assert_eq!(stats.messages_delivered, 4); // 2 at echo + 2 at sink
    }

    #[test]
    fn determinism_same_seed_same_order() {
        let run = |seed: u64| -> Vec<Message> {
            let mut b = SimBuilder::new(seed);
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(
                e,
                PortId(0),
                s,
                PortId(0),
                ChannelConfig::lan().with_jitter(5_000),
            );
            for i in 0..50i64 {
                b.inject(0, e, PortId(0), Message::data([i]));
            }
            b.build().run(None);
            sink.messages()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_seeds_reorder_across_producers() {
        // Two producers race into one sink; the interleaving depends on the
        // seed (per-wire FIFO holds, cross-wire order does not).
        let run = |seed: u64| -> Vec<Message> {
            let mut b = SimBuilder::new(seed);
            let e1 = b.add_instance(echo());
            let e2 = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(
                e1,
                PortId(0),
                s,
                PortId(0),
                ChannelConfig::lan().with_jitter(50_000),
            );
            b.connect_with(
                e2,
                PortId(0),
                s,
                PortId(0),
                ChannelConfig::lan().with_jitter(50_000),
            );
            for i in 0..25i64 {
                b.inject(0, e1, PortId(0), Message::data([i]));
                b.inject(0, e2, PortId(0), Message::data([100 + i]));
            }
            b.build().run(None);
            sink.messages()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn non_fifo_channel_reorders_single_wire() {
        let run = |seed: u64| -> Vec<Message> {
            let mut b = SimBuilder::new(seed);
            let e = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(
                e,
                PortId(0),
                s,
                PortId(0),
                ChannelConfig::lan().with_jitter(50_000).with_fifo(false),
            );
            for i in 0..50i64 {
                b.inject(0, e, PortId(0), Message::data([i]));
            }
            b.build().run(None);
            sink.messages()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn fifo_channel_preserves_send_order() {
        let mut b = SimBuilder::new(12);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_jitter(50_000),
        );
        for i in 0..50i64 {
            b.inject(0, e, PortId(0), Message::data([i]));
        }
        b.build().run(None);
        let expected: Vec<Message> = (0..50i64).map(|i| Message::data([i])).collect();
        assert_eq!(sink.messages(), expected);
    }

    #[test]
    fn service_time_serializes_processing() {
        // With a 1000 µs service time, 10 messages take >= 10_000 µs to
        // drain through a single instance.
        let mut b = SimBuilder::new(0);
        let e = b.add_instance(echo());
        b.set_service_time(e, 1_000);
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::instant());
        for i in 0..10i64 {
            b.inject(0, e, PortId(0), Message::data([i]));
        }
        let mut sim = b.build();
        let stats = sim.run(None);
        assert!(stats.end_time >= 10_000, "end={}", stats.end_time);
    }

    #[test]
    fn duplicates_are_delivered() {
        let mut b = SimBuilder::new(3);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::instant().with_duplicates(1.0),
        );
        b.inject(0, e, PortId(0), Message::data([1i64]));
        let mut sim = b.build();
        let stats = sim.run(None);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn lost_messages_are_retransmitted() {
        let mut b = SimBuilder::new(5);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_loss(1.0),
        );
        b.inject(0, e, PortId(0), Message::data([1i64]));
        let mut sim = b.build();
        let stats = sim.run(None);
        assert_eq!(stats.retransmits, 1);
        // Still delivered exactly once, just late.
        assert_eq!(sink.len(), 1);
        let (t, _) = sink.entries()[0];
        assert!(t >= 10_000, "retransmit delay applied: {t}");
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut b = SimBuilder::new(0);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::instant());
        b.inject(0, e, PortId(0), Message::data([1i64]));
        b.inject(1_000_000, e, PortId(0), Message::data([2i64]));
        let mut sim = b.build();
        sim.run(Some(500_000));
        assert_eq!(sink.len(), 1);
        sim.run(None);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn ticks_fire_after_delay() {
        struct Ticker {
            fired: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl Component for Ticker {
            fn on_message(&mut self, _: usize, _: Message, ctx: &mut Context) {
                ctx.schedule_tick(5_000);
            }
            fn on_tick(&mut self, ctx: &mut Context) {
                assert!(ctx.now >= 5_000);
                self.fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                "ticker"
            }
        }
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut b = SimBuilder::new(0);
        let t = b.add_instance(Box::new(Ticker {
            fired: fired.clone(),
        }));
        b.inject(0, t, PortId(0), Message::Eos);
        b.build().run(None);
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn fan_out_delivers_to_all_wires() {
        let mut b = SimBuilder::new(0);
        let e = b.add_instance(echo());
        let s1 = CollectorSink::new();
        let s2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(s1.clone()));
        let i2 = b.add_instance(Box::new(s2.clone()));
        let ch = b.add_channel(ChannelConfig::instant());
        b.connect(e, PortId(0), i1, PortId(0), ch);
        b.connect(e, PortId(0), i2, PortId(0), ch);
        b.inject(
            0,
            e,
            PortId(0),
            Message::Data(crate::value::Tuple::new([Value::Int(9)])),
        );
        b.build().run(None);
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
    }
}
