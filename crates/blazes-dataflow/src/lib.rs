//! # blazes-dataflow
//!
//! A deterministic **discrete-event simulated dataflow runtime**: the
//! execution substrate for the Blazes case studies.
//!
//! The paper evaluates Blazes on Amazon EC2 with Twitter Storm and the Bloom
//! prototype. This crate substitutes a simulator that preserves the
//! phenomena the evaluation measures:
//!
//! * **Nondeterministic delivery order.** Every channel adds a base latency
//!   plus seeded random jitter, so concurrent messages interleave
//!   nondeterministically — but reproducibly for a given seed.
//! * **At-least-once delivery.** Channels can duplicate messages and "lose"
//!   them (a lost message is retransmitted after a timeout), modeling
//!   Storm-style replay.
//! * **Processing costs and queueing.** Every instance processes messages
//!   sequentially with a configurable per-message service time; a busy
//!   instance queues deliveries. This is what makes *ordering* coordination
//!   expensive: a total-order sequencer serializes traffic that the
//!   uncoordinated system processes in parallel.
//! * **Virtual time.** The clock only advances when events fire; runs are
//!   instantaneous in wall-clock terms and fully reproducible.
//!
//! Components implement the [`component::Component`] trait and are wired
//! into a [`sim::SimBuilder`]. See `blazes-storm` and `blazes-apps` for the
//! engines and applications built on top.

pub mod backend;
pub mod channel;
pub mod component;
pub mod dist;
pub mod message;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod sim;
pub mod sinks;
pub mod value;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::backend::{BackendRunStats, BackendSpec, ChannelId, ExecutorBuilder, PortId};
    pub use crate::channel::ChannelConfig;
    pub use crate::component::{Component, Context};
    pub use crate::dist::{DistSpec, DistStats, Registry};
    pub use crate::message::{Message, SealKey};
    pub use crate::metrics::{RunStats, TimeSeries};
    pub use crate::par::{ParBuilder, ParExecutor, ParStats};
    pub use crate::sim::{InstanceId, SimBuilder, Simulator, Time};
    pub use crate::sinks::{CollectorSink, CountingSink};
    pub use crate::value::{Tuple, Value};
}

pub use prelude::*;
