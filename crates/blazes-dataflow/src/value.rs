//! Values and tuples flowing through simulated streams.
//!
//! The runtime is schema-light: a [`Tuple`] is a positional vector of
//! [`Value`]s; components that need named access keep their own schema
//! (attribute name → position) as configuration.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer payload, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A positional record.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Build a tuple from anything convertible to values.
    pub fn new<I, V>(values: I) -> Tuple
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// Number of fields.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field at position `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Project positions into a new tuple.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(
            positions
                .iter()
                .filter_map(|&i| self.0.get(i).cloned())
                .collect(),
        )
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(7).as_str(), None);
    }

    #[test]
    fn tuple_project() {
        let t = Tuple::new([Value::Int(1), Value::str("a"), Value::Int(3)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::new([Value::Int(3), Value::Int(1)])
        );
        // Out-of-range positions are dropped.
        assert_eq!(t.project(&[9]).arity(), 0);
    }

    #[test]
    fn display_forms() {
        let t = Tuple::new([Value::str("ad1"), Value::Int(42)]);
        assert_eq!(t.to_string(), "(ad1, 42)");
    }

    #[test]
    fn tuples_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Tuple::new([1i64, 2]));
        s.insert(Tuple::new([1i64, 2]));
        s.insert(Tuple::new([2i64, 1]));
        assert_eq!(s.len(), 2);
    }
}
