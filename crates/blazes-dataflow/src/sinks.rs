//! Ready-made sink components for tests and benchmarks.

use crate::component::{Component, Context};
use crate::message::Message;
use crate::metrics::TimeSeries;
use crate::sim::Time;
use parking_lot::Mutex;
use std::sync::Arc;

/// A sink that stores every received message with its arrival time.
/// Cloning shares the buffer.
#[derive(Debug, Clone, Default)]
pub struct CollectorSink {
    entries: Arc<Mutex<Vec<(Time, Message)>>>,
}

impl CollectorSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        CollectorSink::default()
    }

    /// Number of messages received.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the collector empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Snapshot of `(time, message)` entries in arrival order.
    #[must_use]
    pub fn entries(&self) -> Vec<(Time, Message)> {
        self.entries.lock().clone()
    }

    /// Snapshot of the messages only.
    #[must_use]
    pub fn messages(&self) -> Vec<Message> {
        self.entries.lock().iter().map(|(_, m)| m.clone()).collect()
    }

    /// Messages as a sorted set (for order-insensitive comparisons, the
    /// confluence criterion of the paper's Section III-B).
    #[must_use]
    pub fn message_set(&self) -> std::collections::BTreeSet<Message> {
        self.entries.lock().iter().map(|(_, m)| m.clone()).collect()
    }

    /// Drop every entry after the first `len` (time-warp rollback: a
    /// speculative sink truncates back to its checkpoint length).
    pub fn truncate(&self, len: usize) {
        self.entries.lock().truncate(len);
    }

    /// Append externally collected entries (the distributed backend
    /// streams a remote worker's sink contents back into the parent's
    /// handle this way).
    pub fn extend(&self, entries: impl IntoIterator<Item = (Time, Message)>) {
        self.entries.lock().extend(entries);
    }

    /// Clear the buffer.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Component for CollectorSink {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        self.entries.lock().push((ctx.now, msg));
    }

    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        Some(Box::new(self.entries.lock().len()))
    }

    fn restore(&mut self, snapshot: Box<dyn std::any::Any + Send>) {
        let len = *snapshot.downcast::<usize>().expect("collector snapshot");
        self.truncate(len);
    }

    fn name(&self) -> &str {
        "collector-sink"
    }
}

/// A sink that counts data tuples and records a cumulative time series —
/// the "records processed over time" shape of the paper's Figures 12–14.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    series: TimeSeries,
}

impl CountingSink {
    /// A fresh counting sink.
    #[must_use]
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// The shared time series (clone to keep after the sim owns the sink).
    #[must_use]
    pub fn series(&self) -> TimeSeries {
        self.series.clone()
    }

    /// Total data tuples seen.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.series.total()
    }
}

impl Component for CountingSink {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        if matches!(msg, Message::Data(_)) {
            self.series.increment(ctx.now);
        }
    }

    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        Some(Box::new(self.series.len()))
    }

    fn restore(&mut self, snapshot: Box<dyn std::any::Any + Send>) {
        let len = *snapshot.downcast::<usize>().expect("counting snapshot");
        self.series.truncate(len);
    }

    fn name(&self) -> &str {
        "counting-sink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::InstanceId;

    #[test]
    fn collector_records_time_and_payload() {
        let sink = CollectorSink::new();
        let mut c = sink.clone();
        let mut ctx = Context::new(42, InstanceId(0));
        c.on_message(0, Message::data([1i64]), &mut ctx);
        assert_eq!(sink.entries(), vec![(42, Message::data([1i64]))]);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn message_set_ignores_order() {
        let sink = CollectorSink::new();
        let mut c = sink.clone();
        let mut ctx = Context::new(0, InstanceId(0));
        c.on_message(0, Message::data([2i64]), &mut ctx);
        c.on_message(0, Message::data([1i64]), &mut ctx);
        let other = CollectorSink::new();
        let mut o = other.clone();
        o.on_message(0, Message::data([1i64]), &mut ctx);
        o.on_message(0, Message::data([2i64]), &mut ctx);
        assert_ne!(sink.messages(), other.messages());
        assert_eq!(sink.message_set(), other.message_set());
    }

    #[test]
    fn counting_sink_ignores_control_messages() {
        let sink = CountingSink::new();
        let mut c = sink.clone();
        let mut ctx = Context::new(10, InstanceId(0));
        c.on_message(0, Message::data([1i64]), &mut ctx);
        c.on_message(0, Message::Eos, &mut ctx);
        assert_eq!(sink.total(), 1);
    }
}
