//! The ad-tracking network under all four coordination strategies (paper
//! Sections VI-B and VIII-B): white-box analysis of each query, then
//! simulated runs of the CAMPAIGN query comparing strategies.
//!
//! ```text
//! cargo run --release --example ad_reporting
//! ```

use blazes::apps::adreport::{run_scenario, AdScenario, StrategyKind};
use blazes::apps::casestudy::ad_network_graph;
use blazes::apps::queries::ReportQuery;
use blazes::apps::workload::{CampaignPlacement, ClickWorkload};
use blazes::core::analysis::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // White-box analysis: labels for each query, unsealed and sealed.
    println!("query      unsealed    sealed on campaign");
    for query in ReportQuery::ALL {
        let (g, sink) = ad_network_graph(query, None);
        let unsealed = Analyzer::new(&g).run()?.sink_label(sink).cloned();
        let (g, sink) = ad_network_graph(query, Some(&["campaign"]));
        let sealed = Analyzer::new(&g).run()?.sink_label(sink).cloned();
        println!(
            "{:<10} {:<11} {}",
            query.name(),
            unsealed.map(|l| l.to_string()).unwrap_or_default(),
            sealed.map(|l| l.to_string()).unwrap_or_default(),
        );
    }

    // Execution: CAMPAIGN query, 5 ad servers, all strategies.
    println!("\nstrategy           completion   consistent responses?");
    for (strategy, placement) in [
        (StrategyKind::Uncoordinated, CampaignPlacement::Spread),
        (StrategyKind::Ordered, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Independent),
        (StrategyKind::Sealed, CampaignPlacement::Spread),
    ] {
        let sc = AdScenario {
            workload: ClickWorkload {
                ad_servers: 5,
                entries_per_server: 300,
                campaigns: 30,
                placement,
                ..ClickWorkload::default()
            },
            strategy,
            requests: 10,
            ..AdScenario::default()
        };
        let res = run_scenario(&sc);
        println!(
            "{:<18} {:>7.2}s     {}",
            strategy.label(placement),
            res.completion_time()
                .map(|t| t as f64 / 1e6)
                .unwrap_or(f64::NAN),
            res.responses_consistent(),
        );
    }
    Ok(())
}
