//! Demonstrates the anomalies of the paper's Section III-A on the live
//! simulator: replicated reporting servers running the nonmonotonic POOR
//! query return *different answers to the same query* when uncoordinated —
//! and agree under the ordering strategy.
//!
//! ```text
//! cargo run --release --example anomaly_demo
//! ```

use blazes::apps::adreport::{run_scenario, AdScenario, StrategyKind};
use blazes::apps::queries::ReportQuery;
use blazes::apps::workload::{CampaignPlacement, ClickWorkload};

fn main() {
    let base = AdScenario {
        workload: ClickWorkload {
            ad_servers: 4,
            entries_per_server: 400,
            campaigns: 4,
            ads_per_campaign: 2,
            entry_interval: 400,
            placement: CampaignPlacement::Spread,
            ..ClickWorkload::default()
        },
        query: ReportQuery::Poor,
        replicas: 3,
        requests: 40,
        tick_every: 1, // answer every query against the instantaneous state
        ..AdScenario::default()
    };

    // Hunt for a seed where the uncoordinated run exposes cross-instance
    // nondeterminism (most seeds do, with racing clicks and queries).
    let mut inconsistent_seed = None;
    for seed in 0..20 {
        let res = run_scenario(&AdScenario {
            strategy: StrategyKind::Uncoordinated,
            seed,
            ..base.clone()
        });
        if !res.responses_consistent() {
            inconsistent_seed = Some(seed);
            println!(
                "seed {seed}: UNCOORDINATED replicas disagree — replica response-set sizes: {:?}",
                res.responses
                    .iter()
                    .map(|r| r.message_set().len())
                    .collect::<Vec<_>>()
            );
            break;
        }
    }
    let Some(seed) = inconsistent_seed else {
        println!("no inconsistent seed found in 0..20 (unusual — try more seeds)");
        return;
    };

    // The same workload and seed under the ordering strategy: agreement.
    let ordered = run_scenario(&AdScenario {
        strategy: StrategyKind::Ordered,
        seed,
        ..base
    });
    println!(
        "seed {seed}: ORDERED replicas agree: {} (response-set sizes {:?})",
        ordered.responses_consistent(),
        ordered
            .responses
            .iter()
            .map(|r| r.message_set().len())
            .collect::<Vec<_>>()
    );
    assert!(ordered.responses_consistent());
    println!("\nthis is the paper's Section III-A cross-instance nondeterminism, live.");
}
