//! Demonstrates the anomalies of the paper's Section III-A — and their
//! automatic repair by the annotate→analyze→inject pipeline.
//!
//! Replicated reporting servers running the nonmonotonic POOR query
//! return *different answers to the same query* when uncoordinated. The
//! demo then hands the same topology to `blazes-autocoord`: the analysis
//! derives a [`CoordinationSpec`] (ordering for POOR, whose `id` gate is
//! incompatible with the campaign punctuations; seal gates for CAMPAIGN,
//! whose gate is compatible), the rewrite pass injects exactly that, and
//! the replicas agree again.
//!
//! ```text
//! cargo run --release --example anomaly_demo
//! ```

use blazes::apps::adreport::{run_scenario, AdScenario, StrategyKind};
use blazes::apps::autocoord::{ad_network_spec, run_ad_auto};
use blazes::apps::queries::ReportQuery;
use blazes::apps::workload::{CampaignPlacement, ClickWorkload};
use blazes::dataflow::backend::BackendSpec;

fn main() {
    let base = AdScenario {
        workload: ClickWorkload {
            ad_servers: 4,
            entries_per_server: 400,
            campaigns: 4,
            ads_per_campaign: 2,
            entry_interval: 400,
            placement: CampaignPlacement::Spread,
            ..ClickWorkload::default()
        },
        query: ReportQuery::Poor,
        replicas: 3,
        requests: 40,
        tick_every: 1, // answer every query against the instantaneous state
        ..AdScenario::default()
    };

    // Hunt for a seed where the uncoordinated run exposes cross-instance
    // nondeterminism (most seeds do, with racing clicks and queries).
    let mut inconsistent_seed = None;
    for seed in 0..20 {
        let res = run_scenario(&AdScenario {
            strategy: StrategyKind::Uncoordinated,
            seed,
            ..base.clone()
        });
        if !res.responses_consistent() {
            inconsistent_seed = Some(seed);
            println!(
                "seed {seed}: UNCOORDINATED replicas disagree — replica response-set sizes: {:?}",
                res.responses
                    .iter()
                    .map(|r| r.message_set().len())
                    .collect::<Vec<_>>()
            );
            break;
        }
    }
    let Some(seed) = inconsistent_seed else {
        println!("no inconsistent seed found in 0..20 (unusual — try more seeds)");
        return;
    };

    // The repair is no longer hand-wired: the analysis decides. POOR's
    // id-partitioned gate is incompatible with campaign seals, so the
    // spec falls back to an ordering service...
    let poor_spec = ad_network_spec(ReportQuery::Poor);
    println!("\nanalysis for POOR:\n  {}", poor_spec.render().trim_end());
    let (auto, report) = run_ad_auto(
        &AdScenario {
            seed,
            ..base.clone()
        },
        &BackendSpec::Sim,
    );
    println!(
        "seed {seed}: AUTO-COORDINATED replicas agree: {} (injected: {})",
        auto.responses_consistent(),
        report.summary.render().trim_end()
    );
    assert!(auto.responses_consistent());

    // ...while CAMPAIGN's gate is compatible with the punctuations, so
    // the same pipeline injects only cheap seal gates.
    let campaign_spec = ad_network_spec(ReportQuery::Campaign);
    println!(
        "\nanalysis for CAMPAIGN:\n  {}",
        campaign_spec.render().trim_end()
    );
    let (auto, report) = run_ad_auto(
        &AdScenario {
            query: ReportQuery::Campaign,
            seed,
            ..base
        },
        &BackendSpec::Sim,
    );
    println!(
        "CAMPAIGN auto-coordinated replicas agree: {} (injected: {})",
        auto.responses_consistent(),
        report.summary.render().trim_end()
    );
    assert!(auto.responses_consistent());

    println!(
        "\nthis is the paper's Section III-A nondeterminism, repaired by the \
         annotate→analyze→inject loop — minimal coordination, chosen per query."
    );
}
