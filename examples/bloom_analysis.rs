//! White-box Bloom analysis: write a module in the mini-Bloom dialect, let
//! Blazes derive its annotations automatically, and run it through the
//! interpreter (paper Section VII).
//!
//! ```text
//! cargo run --example bloom_analysis
//! ```

use blazes::bloom::analyze::annotate_module;
use blazes::bloom::interp::ModuleInstance;
use blazes::bloom::parser::parse_module;
use blazes::dataflow::value::{Tuple, Value};
use std::collections::BTreeMap;

const PROGRAM: &str = r#"
# A reporting server running the POOR query from the paper's Fig. 6.
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(id, n)
  table log(id, campaign, window)
  scratch poor(id, n)

  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 100
  response <~ (poor * request) on (poor.id = request.id) -> (poor.id, poor.n)
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(PROGRAM)?;

    // Static analysis: derive the C.O.W.R. annotations without any manual
    // input — monotonicity, state and subscripts read off the syntax.
    println!("derived annotations for module {}:", module.name);
    for ann in annotate_module(&module)? {
        println!(
            "  {{ from: {}, to: {}, label: {} }}",
            ann.from, ann.to, ann.annotation
        );
    }

    // Run it: insert clicks, pose a request.
    let mut inst = ModuleInstance::new(module)?;
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "click".to_string(),
        vec![
            Tuple(vec![Value::Int(7), Value::Int(1), Value::Int(0)]),
            Tuple(vec![Value::Int(7), Value::Int(1), Value::Int(1)]),
            Tuple(vec![Value::Int(9), Value::Int(2), Value::Int(0)]),
        ],
    );
    inputs.insert("request".to_string(), vec![Tuple(vec![Value::Int(7)])]);
    let out = inst.tick(inputs)?;
    println!("\nresponses after one timestep:");
    for t in out.on("response") {
        println!("  {t}");
    }
    Ok(())
}
