//! Quickstart: annotate a small dataflow, run the Blazes analysis, and see
//! the synthesized coordination plan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use blazes::core::analysis::Analyzer;
use blazes::core::annotation::ComponentAnnotation;
use blazes::core::derivation;
use blazes::core::graph::DataflowGraph;
use blazes::core::strategy::{plan_for, residual_labels};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Storm wordcount of the paper's Section VI-A: a confluent
    // splitter, an order-sensitive stateful counter partitioned on
    // (word, batch), and an append-only committer.
    let mut g = DataflowGraph::new("wordcount");
    let tweets = g.add_source("tweets", &["word", "batch"]);
    let splitter = g.add_component("Splitter");
    g.add_path(splitter, "tweets", "words", ComponentAnnotation::cr());
    let count = g.add_component("Count");
    g.add_path(
        count,
        "words",
        "counts",
        ComponentAnnotation::ow(["word", "batch"]),
    );
    let commit = g.add_component("Commit");
    g.add_path(commit, "counts", "db", ComponentAnnotation::cw());
    let sink = g.add_sink("store");
    g.connect_source(tweets, splitter, "tweets");
    g.connect(splitter, "words", count, "words");
    g.connect(count, "counts", commit, "counts");
    g.connect_sink(commit, "db", sink);

    // 1. Unsealed: replay produces different results per run -> Run.
    let outcome = Analyzer::new(&g).run()?;
    println!("--- unsealed ---");
    print!("{}", derivation::render(&g, &outcome));
    let plan = plan_for(&g, false)?;
    println!("plan:\n{}", plan.render(&g));
    println!("residual after plan: {:?}\n", residual_labels(&g, &plan)?);

    // 2. Sealed on batch: Blazes recognizes the compatibility between the
    //    punctuated stream and OW_{word,batch} -> Async, no global
    //    coordination.
    g.seal_source(tweets, ["batch"]);
    let outcome = Analyzer::new(&g).run()?;
    println!("--- sealed on batch ---");
    print!("{}", derivation::render(&g, &outcome));
    let plan = plan_for(&g, false)?;
    println!("plan:\n{}", plan.render(&g));
    Ok(())
}
