//! Runs the Storm wordcount case study end to end: analysis first, then
//! both deployments on the simulator, comparing throughput and verifying
//! that outputs agree (paper Sections VI-A and VIII-A).
//!
//! ```text
//! cargo run --release --example storm_wordcount
//! ```

use blazes::apps::casestudy::wordcount_graph;
use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
use blazes::apps::workload::TweetWorkload;
use blazes::core::analysis::Analyzer;
use blazes::core::derivation::render_summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Analysis: the sealed topology needs no global coordination.
    for sealed in [false, true] {
        let (g, _) = wordcount_graph(sealed);
        let outcome = Analyzer::new(&g).run()?;
        print!(
            "{} {}",
            if sealed { "[sealed]  " } else { "[unsealed]" },
            render_summary(&g, &outcome)
        );
    }

    // Execution: same workload under both coordination regimes.
    let base = WordcountScenario {
        workers: 8,
        workload: TweetWorkload {
            batches: 20,
            tweets_per_batch: 30,
            ..TweetWorkload::default()
        },
        ..WordcountScenario::default()
    };

    let sealed = run_wordcount(&WordcountScenario {
        transactional: false,
        ..base.clone()
    });
    let tx = run_wordcount(&WordcountScenario {
        transactional: true,
        ..base
    });

    println!(
        "\nsealed topology:        {:>8.0} tweets/s (virtual)",
        sealed.throughput()
    );
    println!(
        "transactional topology: {:>8.0} tweets/s (virtual)",
        tx.throughput()
    );
    println!(
        "speedup from avoiding global ordering: {:.2}x",
        sealed.throughput() / tx.throughput()
    );

    assert_eq!(
        sealed.counts(),
        tx.counts(),
        "both deployments commit identical counts"
    );
    println!(
        "\nboth deployments committed identical counts for {} (word, batch) keys",
        sealed.counts().len()
    );
    Ok(())
}
