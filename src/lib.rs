//! # blazes
//!
//! Facade crate for the Blazes workspace — a Rust reproduction of
//! *"Blazes: Coordination Analysis for Distributed Programs"* (Alvaro,
//! Conway, Hellerstein, Maier — ICDE 2014).
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! * [`core`] — the Blazes analysis: annotations, labels, inference,
//!   reconciliation, coordination synthesis.
//! * [`autocoord`] — analysis-driven coordination injection: rewrites
//!   topologies so every flagged edge gets exactly the coordination the
//!   analysis demands.
//! * [`dataflow`] — the discrete-event simulated dataflow runtime.
//! * [`coord`] — coordination substrates (sequencer, seal manager,
//!   barriers).
//! * [`storm`] — the mini Storm engine and its grey-box adapter.
//! * [`bloom`] — the mini Bloom language and its white-box analysis.
//! * [`apps`] — the paper's two case-study applications.
//!
//! See `examples/` for runnable walkthroughs and `DESIGN.md` for the system
//! inventory.

pub use blazes_apps as apps;
pub use blazes_autocoord as autocoord;
pub use blazes_bloom as bloom;
pub use blazes_coord as coord;
pub use blazes_core as core;
pub use blazes_dataflow as dataflow;
pub use blazes_obs as obs;
pub use blazes_storm as storm;
