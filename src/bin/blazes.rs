//! `blazes` — the command-line analyzer.
//!
//! Reads a spec file in the paper's annotation format (with the `streams:`
//! / `connections:` / `sinks:` topology extensions), runs the analysis, and
//! prints the derivations, the synthesized coordination plan and placement
//! advice.
//!
//! ```text
//! cargo run --bin blazes -- path/to/topology.blz [--static-order]
//! cargo run --bin blazes -- --demo            # built-in wordcount demo
//! ```

use blazes::core::advisor;
use blazes::core::analysis::Analyzer;
use blazes::core::derivation;
use blazes::core::spec::Spec;
use blazes::core::strategy::{plan_for, residual_labels};

const DEMO: &str = r#"
Splitter:
  annotation:
    - { from: tweets, to: words, label: CR }
Count:
  annotation:
    - { from: words, to: counts, label: OW, subscript: [word, batch] }
Commit:
  annotation: { from: counts, to: db, label: CW }
streams:
  - { name: tweets, attrs: [word, batch], to: Splitter.tweets }
connections:
  - { from: Splitter.words, to: Count.words }
  - { from: Count.counts, to: Commit.counts }
sinks:
  - { name: store, from: Commit.db }
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dynamic = !args.iter().any(|a| a == "--static-order");
    let path = args.iter().find(|a| !a.starts_with("--"));

    let (name, text) = match (path, args.iter().any(|a| a == "--demo")) {
        (Some(p), _) => match std::fs::read_to_string(p) {
            Ok(t) => (p.clone(), t),
            Err(e) => {
                eprintln!("error: cannot read {p:?}: {e}");
                std::process::exit(1);
            }
        },
        (None, true) => ("wordcount-demo".to_string(), DEMO.to_string()),
        (None, false) => {
            eprintln!("usage: blazes <spec-file> [--static-order] | blazes --demo");
            std::process::exit(2);
        }
    };

    let spec = match Spec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let graph = match spec.to_graph(&name) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let outcome = match Analyzer::new(&graph).run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analysis error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", derivation::render(&graph, &outcome));

    match plan_for(&graph, dynamic) {
        Ok(plan) => {
            println!(
                "\n-- synthesized coordination ({}) --",
                if dynamic {
                    "dynamic ordering"
                } else {
                    "static ordering"
                }
            );
            print!("{}", plan.render(&graph));
            match residual_labels(&graph, &plan) {
                Ok(residual) => {
                    println!("-- residual labels after deployment --");
                    for (sink, label) in residual {
                        println!("  {sink}  =>  {label}");
                    }
                }
                Err(e) => eprintln!("residual computation failed: {e}"),
            }
        }
        Err(e) => eprintln!("synthesis error: {e}"),
    }

    let advice = advisor::advise(&graph, &outcome);
    if !advice.is_empty() {
        println!("\n-- placement advice --");
        for a in advice {
            println!("  {}", a.render(&graph));
        }
    }
}
