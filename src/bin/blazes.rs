//! `blazes` — the command-line analyzer.
//!
//! Reads either a spec file in the paper's annotation format (with the
//! `streams:` / `connections:` / `sinks:` topology extensions) or a Bloom
//! module (a `.blz` file whose first statement is `module ... { ... }`).
//!
//! For annotation specs it runs the analysis and prints the derivations,
//! the synthesized coordination plan and placement advice. For Bloom
//! modules it derives the C.O.W.R. annotations from the white-box
//! analysis; with `--tick-stats` it additionally executes the module on a
//! synthetic workload and prints per-stratum evaluation counters.
//!
//! ```text
//! cargo run --bin blazes -- path/to/topology.blz [--static-order]
//! cargo run --bin blazes -- --demo            # built-in wordcount demo
//! cargo run --bin blazes -- module.blz --tick-stats [--ticks N] \
//!     [--rows N] [--mode naive|semi|sharded[:W]]
//! ```
//!
//! Every form accepts `--trace FILE`: the observability layer records the
//! run (Bloom stratum fixpoints, scheduler events when a runtime is
//! involved) and a Chrome-trace JSON is written on exit.

use blazes::core::advisor;
use blazes::core::analysis::Analyzer;
use blazes::core::derivation;
use blazes::core::spec::Spec;
use blazes::core::strategy::{plan_for, residual_labels};
use blazes_bloom::interp::{EvalMode, ModuleInstance};
use blazes_bloom::{annotate_module, parse_module};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::BTreeMap;

const DEMO: &str = r#"
Splitter:
  annotation:
    - { from: tweets, to: words, label: CR }
Count:
  annotation:
    - { from: words, to: counts, label: OW, subscript: [word, batch] }
Commit:
  annotation: { from: counts, to: db, label: CW }
streams:
  - { name: tweets, attrs: [word, batch], to: Splitter.tweets }
connections:
  - { from: Splitter.words, to: Count.words }
  - { from: Count.counts, to: Commit.counts }
sinks:
  - { name: store, from: Commit.db }
"#;

/// A file is a Bloom module when its first non-comment token is `module`.
fn is_bloom_module(text: &str) -> bool {
    text.lines()
        .map(str::trim_start)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| l.starts_with("module"))
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_mode(s: &str) -> Result<EvalMode, String> {
    match s {
        "naive" => Ok(EvalMode::Naive),
        "semi" | "semi-naive" => Ok(EvalMode::SemiNaive),
        "sharded" => Ok(EvalMode::sharded_auto()),
        _ => {
            if let Some(w) = s.strip_prefix("sharded:") {
                let workers: usize = w
                    .parse()
                    .map_err(|_| format!("bad worker count in --mode {s:?}"))?;
                Ok(EvalMode::Sharded { workers })
            } else {
                Err(format!(
                    "unknown mode {s:?} (expected naive|semi|sharded[:W])"
                ))
            }
        }
    }
}

/// Deterministic synthetic workload: each input interface of arity `k`
/// receives `rows` tuples where row `i` is `(i, i+1, …, i+k-1)` — for
/// binary relations this forms a chain, which exercises recursive rules.
fn synthetic_inputs(m: &blazes_bloom::Module, rows: usize) -> BTreeMap<String, Vec<Tuple>> {
    m.inputs()
        .iter()
        .map(|iface| {
            let arity = m
                .collection(iface)
                .map_or(1, blazes_bloom::ast::CollectionDecl::arity);
            let tuples = (0..rows)
                .map(|i| Tuple((0..arity).map(|j| Value::Int((i + j) as i64)).collect()))
                .collect();
            (iface.to_string(), tuples)
        })
        .collect()
}

fn run_bloom_module(name: &str, text: &str, args: &[String]) {
    let module = match parse_module(text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("parse error in {name:?}: {e}");
            std::process::exit(1);
        }
    };
    println!("module {} ({} rules)", module.name, module.rules.len());

    println!("\n-- derived annotations (white-box analysis) --");
    match annotate_module(&module) {
        Ok(annotations) if annotations.is_empty() => println!("  (none)"),
        Ok(annotations) => {
            for a in &annotations {
                println!("  {} -> {}  =>  {}", a.from, a.to, a.annotation);
            }
        }
        Err(e) => eprintln!("  analysis error: {e}"),
    }

    if !args.iter().any(|a| a == "--tick-stats") {
        return;
    }

    let mode = match parse_mode(&flag_value(args, "--mode").unwrap_or_else(|| "semi".into())) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ticks: u64 =
        flag_value(args, "--ticks").map_or(1, |v| v.parse().expect("--ticks expects an integer"));
    let rows: usize =
        flag_value(args, "--rows").map_or(32, |v| v.parse().expect("--rows expects an integer"));

    let mut inst = match ModuleInstance::with_mode(module, mode) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("instantiation error: {e}");
            std::process::exit(1);
        }
    };
    println!("\n-- tick stats ({mode:?}, {rows} rows/input, {ticks} tick(s)) --");
    for tick in 1..=ticks {
        let inputs = synthetic_inputs(inst.module(), rows);
        match inst.tick(inputs) {
            Ok(out) => {
                let emitted: usize = out.outputs.values().map(Vec::len).sum();
                println!("tick {tick}: {emitted} output tuple(s)");
            }
            Err(e) => {
                eprintln!("tick {tick} failed: {e}");
                std::process::exit(1);
            }
        }
        for (stratum, s) in inst.last_stratum_stats().iter().enumerate() {
            println!(
                "  stratum {stratum}: {} iter(s), {} derivation(s), {} probe(s), {:.3} ms",
                s.fixpoint_iters,
                s.derivations,
                s.join_probes,
                s.wall_ns as f64 / 1e6
            );
        }
        let t = inst.last_tick_stats();
        println!(
            "  total: {} iter(s), {} derivation(s), {} probe(s), {:.3} ms",
            t.fixpoint_iters,
            t.derivations,
            t.join_probes,
            t.wall_ns as f64 / 1e6
        );
    }
    let c = inst.cumulative_stats();
    println!(
        "cumulative over {} tick(s): {} derivation(s), {} probe(s), {:.3} ms",
        inst.ticks(),
        c.derivations,
        c.join_probes,
        c.wall_ns as f64 / 1e6
    );
}

/// Write the Chrome-trace JSON when `--trace` was given.
fn export_trace(path: Option<&String>) {
    if let Some(path) = path {
        match blazes::obs::global().export_chrome(path) {
            Ok(()) => println!("# trace written to {path}"),
            Err(e) => {
                eprintln!("trace export failed for {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dynamic = !args.iter().any(|a| a == "--static-order");
    let trace = flag_value(&args, "--trace");
    if trace.is_some() {
        blazes::obs::global().set_enabled(true);
    }
    let value_flags = ["--mode", "--ticks", "--rows", "--trace"];
    let path = args.iter().enumerate().find_map(|(i, a)| {
        if a.starts_with("--") {
            return None;
        }
        // Skip values consumed by flags like `--mode semi`.
        if i > 0 && value_flags.contains(&args[i - 1].as_str()) {
            return None;
        }
        Some(a)
    });

    let (name, text) = match (path, args.iter().any(|a| a == "--demo")) {
        (Some(p), _) => match std::fs::read_to_string(p) {
            Ok(t) => (p.clone(), t),
            Err(e) => {
                eprintln!("error: cannot read {p:?}: {e}");
                std::process::exit(1);
            }
        },
        (None, true) => ("wordcount-demo".to_string(), DEMO.to_string()),
        (None, false) => {
            eprintln!(
                "usage: blazes <spec-file> [--static-order] | blazes --demo\n       \
                 blazes <module.blz> [--tick-stats] [--ticks N] [--rows N] \
                 [--mode naive|semi|sharded[:W]]"
            );
            std::process::exit(2);
        }
    };

    if is_bloom_module(&text) {
        run_bloom_module(&name, &text, &args);
        export_trace(trace.as_ref());
        return;
    }

    let spec = match Spec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let graph = match spec.to_graph(&name) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let outcome = match Analyzer::new(&graph).run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analysis error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", derivation::render(&graph, &outcome));

    match plan_for(&graph, dynamic) {
        Ok(plan) => {
            println!(
                "\n-- synthesized coordination ({}) --",
                if dynamic {
                    "dynamic ordering"
                } else {
                    "static ordering"
                }
            );
            print!("{}", plan.render(&graph));
            match residual_labels(&graph, &plan) {
                Ok(residual) => {
                    println!("-- residual labels after deployment --");
                    for (sink, label) in residual {
                        println!("  {sink}  =>  {label}");
                    }
                }
                Err(e) => eprintln!("residual computation failed: {e}"),
            }
        }
        Err(e) => eprintln!("synthesis error: {e}"),
    }

    let advice = advisor::advise(&graph, &outcome);
    if !advice.is_empty() {
        println!("\n-- placement advice --");
        for a in advice {
            println!("  {}", a.render(&graph));
        }
    }
    export_trace(trace.as_ref());
}
